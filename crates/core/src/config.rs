//! Accelerator configuration.

use capsacc_fixed::NumericConfig;
use capsacc_memory::MemoryConfig;

/// Dataflow policy switches — each corresponds to one of the paper's
/// data-reuse mechanisms, and each can be disabled for ablation studies.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct DataflowOptions {
    /// Hold filter weights in the PEs' second weight register and reuse
    /// them across convolution windows (Sec. IV-A). Disabled, weights are
    /// re-fetched from the Weight Buffer for every data row.
    pub weight_reuse: bool,
    /// Stream consecutive K-tiles back-to-back, hiding weight reloads
    /// behind data streaming ("at full throttle, each PE produces one
    /// output-per-clock cycle", Sec. IV-A).
    pub pipelined_tiles: bool,
    /// Reuse the predictions `û_{j|i}` through the horizontal feedback
    /// path during routing instead of re-reading the Data Memory
    /// (Fig. 12c/d).
    pub routing_feedback: bool,
    /// Skip the first routing softmax and initialize the coupling
    /// coefficients directly (the Sec. V algorithmic optimization).
    pub skip_first_softmax: bool,
}

impl Default for DataflowOptions {
    /// All optimizations enabled — the paper's design point.
    fn default() -> Self {
        Self {
            weight_reuse: true,
            pipelined_tiles: true,
            routing_feedback: true,
            skip_first_softmax: true,
        }
    }
}

/// How the engine executes the systolic-array portion of a tiled matmul.
///
/// Both backends produce **bit-identical** results — functional outputs
/// (including Acc25 saturation order and per-image `MacStats`), cycle
/// counts, traffic counters and memory-subsystem stalls — enforced by
/// `tests/backend_equivalence.rs` and the shared golden digests. They
/// differ only in wall-clock cost of the *simulation itself*.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum EngineBackend {
    /// Register-transfer-level execution: every PE register is ticked
    /// every clock edge ([`crate::SystolicArray::tick`]). Authoritative
    /// for microarchitectural questions (wavefront timing, register
    /// contents, edge-by-edge observability) and the reference the
    /// `Functional` backend is differentially tested against.
    #[default]
    Ticked,
    /// Direct tile evaluation: each output column is computed as the
    /// per-column saturating fold the PE datapath performs
    /// ([`crate::Pe::mac_step`] applied in fixed north→south order)
    /// over flat row-major tile buffers, with zero per-edge work.
    /// Cycles are charged per tile from the exact serial-schedule
    /// counts the ticked array would execute (`R + 1` per weight load,
    /// `M + R + C` per stream), so all accounting is identical. Use
    /// this to run MNIST-scale engine workloads at wall-clock speed
    /// (see `exp_engine_speed`).
    Functional,
}

/// How the `Functional` backend's inner fold is executed on the host.
///
/// Purely a host-speed choice: every mode computes the identical
/// saturating fold ([`crate::Pe::mac_step`] /
/// `AccumulatorUnit::fold_step` semantics), so results, cycle charges
/// and traffic are bit-identical across modes (pinned by
/// `tests/backend_equivalence.rs` with the lane-width axis).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum SimdMode {
    /// Use the explicit-SIMD kernel when the host supports it (AVX2 on
    /// x86-64, detected at runtime), falling back to the scalar kernel
    /// otherwise. The default.
    #[default]
    Auto,
    /// Always take the scalar kernel — the portable reference the SIMD
    /// path is differentially tested against, and the in-run baseline
    /// `exp_engine_speed` measures its speedup bound from.
    Scalar,
}

/// Which fixed-width inner kernel the `Functional` backend uses for
/// full-width (`nt == 16`) no-clip tiles.
///
/// Both kernels are exact — a zero operand contributes `+0` to an
/// in-range partial sum, so skipping it cannot change the fold — which
/// makes this a speed choice only. `Auto` picks by measuring the staged
/// data panel's zero fraction (≥ 25% zeros favors skipping; post-ReLU
/// operands at MNIST scale are ~50% zeros); the `Force*` variants pin
/// one kernel for differential testing
/// (`tests/backend_equivalence.rs::kernel_selection_is_bit_equal`).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum KernelSelect {
    /// Choose per matmul from the staged panel's zero fraction.
    #[default]
    Auto,
    /// Always take the dense (row-blocked, no zero test) kernel.
    ForceDense,
    /// Always take the zero-skipping kernel.
    ForceZeroSkip,
}

/// Host-execution knobs of the [`EngineBackend::Functional`] backend.
///
/// None of these change any simulated observable — outputs, saturation
/// attribution, cycle counts, traffic and memory stalls are
/// bit-identical at every setting (the parallel-equivalence invariant,
/// pinned by `tests/backend_equivalence.rs` across thread-count and
/// lane-width axes). They only change how fast the *host* computes the
/// same numbers.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct FunctionalOptions {
    /// OS threads for data-parallel row execution. `0` (the default)
    /// resolves to [`std::thread::available_parallelism`] and applies a
    /// minimum-work threshold so small matmuls stay serial; an explicit
    /// `n ≥ 2` always splits the rows into `min(n, rows)` chunks (the
    /// setting the determinism proptests drive). `1` is fully serial.
    pub threads: usize,
    /// SIMD lane-width policy of the inner fold.
    pub simd: SimdMode,
    /// Fixed-width kernel selection policy.
    pub kernel: KernelSelect,
}

/// How much of the functional trace the engine materializes.
///
/// Snapshot capture is pure observation: it never changes results,
/// cycles or traffic — only whether the per-iteration routing tensors
/// are cloned into the returned [`capsacc_capsnet::QuantTrace`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum TraceLevel {
    /// Capture everything, including one [`capsacc_capsnet::
    /// RoutingIterationTrace`] snapshot per routing iteration — four
    /// tensor clones per iteration. The default, and what the
    /// bit-exactness suites compare against the reference model.
    #[default]
    Full,
    /// Skip the per-iteration routing snapshots
    /// (`QuantTrace::iterations` stays empty); final outputs, cycle
    /// counts and traffic are identical to [`TraceLevel::Full`]. The
    /// serving configuration: avoids cloning the routing state per
    /// iteration per image on the hot path.
    Outputs,
}

/// Static configuration of a CapsAcc instance.
///
/// [`AcceleratorConfig::paper`] is the synthesized design point of
/// Table II: a 16×16 systolic array at 250 MHz with 8-bit operands and
/// 8 MB of on-chip memory.
///
/// # Example
///
/// ```
/// use capsacc_core::AcceleratorConfig;
/// let cfg = AcceleratorConfig::paper();
/// assert_eq!((cfg.rows, cfg.cols), (16, 16));
/// assert_eq!(cfg.clock_mhz, 250);
/// cfg.validate().expect("paper config is valid");
/// ```
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct AcceleratorConfig {
    /// Systolic array rows (the reduction dimension).
    pub rows: usize,
    /// Systolic array columns (the output dimension); also the number of
    /// accumulator and activation units.
    pub cols: usize,
    /// Clock frequency in MHz (Table II: 250).
    pub clock_mhz: u64,
    /// Weight Memory → Weight Buffer bandwidth in bytes per cycle.
    /// Layers whose weight footprint exceeds the Weight Buffer stream at
    /// this rate, which is what makes PrimaryCaps memory-bound.
    pub weight_mem_bw: u64,
    /// Data Memory → Data Buffer bandwidth in bytes per cycle.
    pub data_mem_bw: u64,
    /// Routing Buffer port bandwidth in bytes per cycle (read + write
    /// each); bounds the softmax/update steps that sweep all 11 520
    /// coupling coefficients.
    pub routing_buf_bw: u64,
    /// Data Buffer capacity in bytes.
    pub data_buffer_bytes: usize,
    /// Routing Buffer capacity in bytes.
    pub routing_buffer_bytes: usize,
    /// Weight Buffer capacity in bytes.
    pub weight_buffer_bytes: usize,
    /// On-chip memory capacity in bytes (Table II: 8 MB).
    pub onchip_memory_bytes: usize,
    /// Number of parallel activation units (the paper has one per
    /// column).
    pub activation_units: usize,
    /// Numeric formats of the datapath.
    pub numeric: NumericConfig,
    /// Dataflow policy switches.
    pub dataflow: DataflowOptions,
    /// Execution backend of the tiled-matmul engine. Defaults to
    /// [`EngineBackend::Ticked`] (the RTL reference);
    /// [`EngineBackend::Functional`] is bit-identical and orders of
    /// magnitude faster in wall-clock time.
    pub backend: EngineBackend,
    /// Trace capture level. Defaults to [`TraceLevel::Full`];
    /// [`TraceLevel::Outputs`] skips the per-iteration routing
    /// snapshots on the serving hot path.
    pub trace_level: TraceLevel,
    /// Host-execution knobs of the `Functional` backend (threads, SIMD
    /// lane width, kernel selection). Never change simulated results —
    /// only host wall-clock speed.
    pub functional: FunctionalOptions,
    /// Memory-hierarchy model (`capsacc-memory`). Defaults to
    /// [`MemoryConfig::ideal`] — "IdealMemory", which keeps every cycle
    /// count and trace identical to the pre-hierarchy engine; switch to
    /// [`MemoryConfig::paper`] (or a swept point) for contention- and
    /// DRAM-accurate timing.
    pub memory: MemoryConfig,
}

impl AcceleratorConfig {
    /// The synthesized 16×16 design point of Table II.
    pub fn paper() -> Self {
        Self {
            rows: 16,
            cols: 16,
            clock_mhz: 250,
            weight_mem_bw: 8,
            data_mem_bw: 8,
            routing_buf_bw: 4,
            data_buffer_bytes: 256 * 1024,
            routing_buffer_bytes: 64 * 1024,
            weight_buffer_bytes: 24 * 1024,
            onchip_memory_bytes: 8 * 1024 * 1024,
            activation_units: 16,
            numeric: NumericConfig::default(),
            dataflow: DataflowOptions::default(),
            backend: EngineBackend::default(),
            trace_level: TraceLevel::default(),
            functional: FunctionalOptions::default(),
            memory: MemoryConfig::ideal(),
        }
    }

    /// A small 4×4 instance used by the cycle-accurate unit tests.
    pub fn test_4x4() -> Self {
        Self {
            rows: 4,
            cols: 4,
            activation_units: 4,
            data_buffer_bytes: 16 * 1024,
            routing_buffer_bytes: 4 * 1024,
            weight_buffer_bytes: 2 * 1024,
            ..Self::paper()
        }
    }

    /// Cycle period in microseconds.
    pub fn cycle_us(&self) -> f64 {
        1.0 / self.clock_mhz as f64
    }

    /// Converts a cycle count to microseconds at the configured clock.
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 * self.cycle_us()
    }

    /// Total number of processing elements.
    pub fn pe_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint (zero
    /// dimensions, zero bandwidths, or numeric-format inconsistencies).
    pub fn validate(&self) -> Result<(), String> {
        if self.rows == 0 || self.cols == 0 {
            return Err("systolic array dimensions must be non-zero".into());
        }
        if self.clock_mhz == 0 {
            return Err("clock frequency must be non-zero".into());
        }
        if self.weight_mem_bw == 0 || self.data_mem_bw == 0 || self.routing_buf_bw == 0 {
            return Err("memory bandwidths must be non-zero".into());
        }
        if self.activation_units == 0 {
            return Err("at least one activation unit required".into());
        }
        self.memory.validate()?;
        self.numeric.validate()
    }
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table2() {
        let c = AcceleratorConfig::paper();
        assert_eq!(c.pe_count(), 256);
        assert_eq!(c.clock_mhz, 250);
        assert_eq!(c.onchip_memory_bytes, 8 * 1024 * 1024);
        assert_eq!(c.cycle_us(), 0.004);
    }

    #[test]
    fn cycles_to_us() {
        let c = AcceleratorConfig::paper();
        assert_eq!(c.cycles_to_us(250), 1.0);
        assert_eq!(c.cycles_to_us(250_000), 1000.0);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = AcceleratorConfig::paper();
        c.rows = 0;
        assert!(c.validate().is_err());
        let mut c = AcceleratorConfig::paper();
        c.weight_mem_bw = 0;
        assert!(c.validate().is_err());
        let mut c = AcceleratorConfig::paper();
        c.activation_units = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn memory_validation_is_wired_into_accelerator_validation() {
        // A zero-bandwidth or zero-burst DRAM channel divides by zero in
        // the channel cycle math: `AcceleratorConfig::validate` must
        // surface `MemoryConfig::validate`'s rejection, so no engine can
        // be constructed around a divide-by-zero hierarchy.
        let mut c = AcceleratorConfig::paper();
        c.memory.dram.bytes_per_cycle = 0;
        assert!(c.validate().unwrap_err().contains("DRAM"));
        let mut c = AcceleratorConfig::paper();
        c.memory.dram.burst_bytes = 0;
        assert!(c.validate().unwrap_err().contains("DRAM"));
        let mut c = AcceleratorConfig::paper();
        c.memory.prefetch_buffers = 0;
        assert!(c.validate().is_err());
        let mut c = AcceleratorConfig::paper();
        c.memory.weight_spm.banks = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid accelerator configuration")]
    fn accelerator_refuses_divide_by_zero_memory() {
        let mut c = AcceleratorConfig::test_4x4();
        c.memory.dram.burst_bytes = 0;
        let _ = crate::Accelerator::new(c);
    }

    #[test]
    fn default_dataflow_enables_all_reuse() {
        let d = DataflowOptions::default();
        assert!(d.weight_reuse && d.pipelined_tiles && d.routing_feedback && d.skip_first_softmax);
    }

    #[test]
    fn test_config_is_valid() {
        AcceleratorConfig::test_4x4().validate().unwrap();
    }

    #[test]
    fn functional_options_default_to_auto() {
        // The host-execution knobs default to auto everywhere; any
        // setting validates because none can change simulated results.
        let c = AcceleratorConfig::paper();
        assert_eq!(c.functional, FunctionalOptions::default());
        assert_eq!(c.functional.threads, 0);
        assert_eq!(c.functional.simd, SimdMode::Auto);
        assert_eq!(c.functional.kernel, KernelSelect::Auto);
        let mut forced = c;
        forced.functional = FunctionalOptions {
            threads: 7,
            simd: SimdMode::Scalar,
            kernel: KernelSelect::ForceZeroSkip,
        };
        forced.validate().expect("host knobs are always valid");
    }

    #[test]
    fn defaults_are_ticked_and_fully_traced() {
        // The reference behaviors stay the defaults: existing callers
        // (and every pinned digest) see the RTL backend and full traces
        // unless they opt out.
        let c = AcceleratorConfig::paper();
        assert_eq!(c.backend, EngineBackend::Ticked);
        assert_eq!(c.trace_level, TraceLevel::Full);
        let mut fast = c;
        fast.backend = EngineBackend::Functional;
        fast.trace_level = TraceLevel::Outputs;
        fast.validate().expect("backend choice is always valid");
    }
}
