//! The cycle-accurate execution engine.
//!
//! [`Accelerator`] owns a register-transfer-level [`SystolicArray`] and
//! drives it through the paper's dataflow mappings tile by tile, cycle by
//! cycle. The functional results are **bit-exact** against the quantized
//! reference model (`capsacc_capsnet::infer_q8_traced`) — the engine even
//! assembles its results into the same [`QuantTrace`] type so integration
//! tests can `assert_eq!` entire inference traces.
//!
//! Cycle accounting: the systolic-array cycles are exact (every PE
//! register is ticked); activation-unit costs use the per-operation
//! formulas of Sec. IV-C; bandwidth ceilings (weight streaming, routing
//! buffer ports) are the analytical model's domain
//! ([`crate::timing`]). The engine executes tiles serially — the
//! pipelined "full throttle" overlap is modelled analytically and
//! cross-checked against the serial engine with pipelining disabled.
//!
//! Two execution backends produce this identical behavior
//! ([`crate::EngineBackend`]): `Ticked` drives every PE register through
//! [`SystolicArray::tick`], while `Functional` evaluates each tile as
//! the per-column saturating fold the PE datapath performs
//! ([`Pe::mac_step`](crate::Pe::mac_step) in fixed north→south order —
//! in parallel across data rows and with explicit SIMD when the host
//! supports it, see [`crate::FunctionalOptions`]) and charges the exact
//! per-tile cycle counts the ticked schedule executes — bit-identical
//! results and accounting at wall-clock speed (differentially pinned by
//! `tests/backend_equivalence.rs`).

use capsacc_capsnet::{
    primary_capsules, CapsNetConfig, QuantPipeline, QuantTrace, QuantizedParams,
    RoutingIterationTrace, RoutingVariant,
};
use capsacc_faults::FaultPlan;
use capsacc_memory::{MatmulGeometry, MemReport, MemorySubsystem, TileSchedule};
use capsacc_telemetry::{CycleKind, Recorder, SpanDetail, TelemetryConfig};
use capsacc_tensor::{u64_from, Tensor};

use crate::accumulator::AccumulatorUnit;
use crate::activation::{ActivationKind, ActivationUnit};
use crate::config::{AcceleratorConfig, EngineBackend, TraceLevel};
use crate::kernel;
use crate::systolic::SystolicArray;
use crate::timing::RoutingStep;
use crate::traffic::{MemoryKind, TrafficReport};

/// Cycle count of one executed layer (Fig. 16 rows).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LayerRun {
    /// Layer name.
    pub name: &'static str,
    /// Systolic-array cycles consumed.
    pub array_cycles: u64,
    /// Activation-unit cycles consumed.
    pub activation_cycles: u64,
    /// Cycles stalled on the memory hierarchy (bank conflicts + exposed
    /// DRAM fills). Always zero under the `IdealMemory` configuration.
    pub memory_stall_cycles: u64,
}

impl LayerRun {
    /// Total cycles of this layer.
    pub fn cycles(&self) -> u64 {
        self.array_cycles + self.activation_cycles + self.memory_stall_cycles
    }
}

/// Result of a full cycle-accurate inference.
#[derive(Clone, PartialEq, Debug)]
pub struct InferenceRun {
    /// The full functional trace, directly comparable (`==`) with the
    /// reference model's trace.
    pub trace: QuantTrace,
    /// Per-layer cycle counts.
    pub layers: Vec<LayerRun>,
    /// Per-routing-step cycle counts (Fig. 17 rows).
    pub steps: Vec<(RoutingStep, u64)>,
    /// Traffic across all memories and buffers during this run.
    pub traffic: TrafficReport,
    /// Memory-hierarchy report for this run (stall decomposition,
    /// on-chip/off-chip split, per-SPM activity).
    pub memory: MemReport,
    /// Accumulator-unit saturation events during this run (zero in
    /// correct operation).
    pub accumulator_saturations: u64,
}

/// The CapsAcc accelerator: systolic array, accumulators, activation
/// units, buffers and the control sequencing of Sec. V.
///
/// # Example
///
/// ```
/// use capsacc_core::{Accelerator, AcceleratorConfig, ActivationKind};
/// use capsacc_tensor::Tensor;
///
/// let mut acc = Accelerator::new(AcceleratorConfig::test_4x4());
/// // A 3×5 by 5×2 quantized matmul, requantized with shift 6.
/// let a = Tensor::from_fn(&[3, 5], |i| (i[0] * 5 + i[1]) as i8);
/// let b = Tensor::from_fn(&[5, 2], |i| (i[0] + i[1]) as i8 * 8);
/// let out = acc.matmul(
///     &|m, k| a[[m, k]],
///     &|k, n| b[[k, n]],
///     3, 5, 2, None, 6, ActivationKind::Identity,
/// );
/// let (exact, _) = capsacc_tensor::qops::matmul_q8(&a, &b, 6);
/// assert_eq!(out, exact);
/// ```
#[derive(Debug)]
pub struct Accelerator {
    pub(crate) cfg: AcceleratorConfig,
    pub(crate) array: SystolicArray,
    pub(crate) activation: ActivationUnit,
    pub(crate) traffic: TrafficReport,
    pub(crate) memory: MemorySubsystem,
    pub(crate) activation_cycles: u64,
    pub(crate) memory_stall_cycles: u64,
    pub(crate) accumulator_saturations: u64,
    // Seeded transient-fault injection at the accumulator drain. The
    // drain op counter advances in the (n_tile, image, column, row)
    // order both backends share, so a given plan hits the identical
    // ops ticked or functional; with no engine faults in the plan the
    // counter never advances and the hook is an inert early-return.
    pub(crate) fault_plan: FaultPlan,
    pub(crate) fault_op_seq: u64,
    pub(crate) fault_flips: u64,
    pub(crate) fault_masked: u64,
    // Telemetry recorder — disabled by default, and when disabled every
    // instrumentation call below is an inert early-return (the
    // byte-invisibility invariant pinned by telemetry_equivalence.rs).
    pub(crate) rec: Recorder,
}

/// Reshapes a `[patches, out_ch]` matmul result into the `[out_ch, oh,
/// ow]` layout the next layer consumes.
pub(crate) fn to_chw(mn: &Tensor<i8>, g: &capsacc_tensor::ConvGeometry) -> Tensor<i8> {
    Tensor::from_fn(&[g.out_ch, g.out_h(), g.out_w()], |i| {
        mn[[i[1] * g.out_w() + i[2], i[0]]]
    })
}

/// Everything the routing-by-agreement phase produces for one image —
/// the trace pieces plus the MAC count of the Sum/Update matmuls.
pub(crate) struct RoutingOutcome {
    pub(crate) iterations: Vec<RoutingIterationTrace>,
    pub(crate) couplings: Tensor<i8>,
    pub(crate) class_caps: Tensor<i8>,
    pub(crate) final_norms: Vec<u8>,
    pub(crate) predicted: usize,
    pub(crate) macs: u64,
}

impl Accelerator {
    /// Builds an accelerator instance.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`AcceleratorConfig::validate`].
    pub fn new(cfg: AcceleratorConfig) -> Self {
        cfg.validate().expect("invalid accelerator configuration");
        Self {
            array: SystolicArray::new(cfg.rows, cfg.cols),
            activation: ActivationUnit::new(QuantPipeline::new(cfg.numeric)),
            traffic: TrafficReport::default(),
            memory: MemorySubsystem::new(cfg.memory),
            activation_cycles: 0,
            memory_stall_cycles: 0,
            accumulator_saturations: 0,
            fault_plan: FaultPlan::none(),
            fault_op_seq: 0,
            fault_flips: 0,
            fault_masked: 0,
            rec: Recorder::disabled(),
            cfg,
        }
    }

    /// Arms seeded transient-fault injection at the accumulator drain:
    /// each drained partial sum consumes one op-sequence draw from
    /// `plan`, and a hit XORs one bit in `0..`[`AccumulatorUnit::BITS`]
    /// of the raw accumulator word before bias and activation. When
    /// `plan.engine.mask_with_saturation` is set, flipped values that
    /// escape the accumulator's legal ±2^24 range are clamped back to
    /// the boundary (the saturating-drain detector masking the upset)
    /// and counted in [`Accelerator::fault_masked`]. With no engine
    /// faults in the plan this is byte-invisible: no draw is consumed
    /// and every output is bit-identical to the unarmed engine.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = plan;
    }

    /// The armed fault plan ([`FaultPlan::none`] by default).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Drain ops that consumed a fault draw so far.
    pub fn fault_ops(&self) -> u64 {
        self.fault_op_seq
    }

    /// Accumulator bit-flips injected so far.
    pub fn fault_flips(&self) -> u64 {
        self.fault_flips
    }

    /// Injected flips masked by the saturating clamp so far.
    pub fn fault_masked(&self) -> u64 {
        self.fault_masked
    }

    /// Applies the armed fault plan to one drained accumulator word,
    /// advancing the shared op counter. Inert when the plan carries no
    /// engine faults.
    fn apply_acc_fault(&mut self, raw: i64) -> i64 {
        if !self.fault_plan.has_engine_faults() {
            return raw;
        }
        let seq = self.fault_op_seq;
        self.fault_op_seq += 1;
        let Some(bit) = self.fault_plan.acc_bitflip(seq) else {
            return raw;
        };
        self.fault_flips += 1;
        self.rec.counter_add("engine.fault_flips", 1);
        let flipped = raw ^ (1i64 << bit);
        if !self.fault_plan.engine.mask_with_saturation {
            return flipped;
        }
        let lo = -(1i64 << (AccumulatorUnit::BITS - 1));
        let hi = (1i64 << (AccumulatorUnit::BITS - 1)) - 1;
        let clamped = flipped.clamp(lo, hi);
        if clamped != flipped {
            self.fault_masked += 1;
            self.rec.counter_add("engine.fault_masked", 1);
        }
        clamped
    }

    /// Turns telemetry recording on, replacing any existing recorder
    /// state. Recording observes the simulation only: outputs, cycle
    /// counts, traffic and memory reports are bit-identical with
    /// recording on, off, or at any [`SpanDetail`].
    pub fn enable_telemetry(&mut self, cfg: TelemetryConfig) {
        self.rec = Recorder::new(cfg);
    }

    /// The telemetry recorder (a disabled recorder by default).
    pub fn telemetry(&self) -> &Recorder {
        &self.rec
    }

    /// Mutable access to the telemetry recorder.
    pub fn telemetry_mut(&mut self) -> &mut Recorder {
        &mut self.rec
    }

    /// Takes the recorder out for export, leaving recording disabled.
    pub fn take_telemetry(&mut self) -> Recorder {
        std::mem::take(&mut self.rec)
    }

    /// The configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.cfg
    }

    /// Systolic-array cycles executed so far.
    pub fn array_cycles(&self) -> u64 {
        self.array.cycles()
    }

    /// Activation-unit cycles accounted so far.
    pub fn activation_cycles(&self) -> u64 {
        self.activation_cycles
    }

    /// Traffic counters.
    pub fn traffic(&self) -> &TrafficReport {
        &self.traffic
    }

    /// Memory-hierarchy stall cycles accounted so far (zero under
    /// `IdealMemory`).
    pub fn memory_stall_cycles(&self) -> u64 {
        self.memory_stall_cycles
    }

    /// Cumulative memory-hierarchy counters.
    pub fn memory_report(&self) -> MemReport {
        self.memory.report()
    }

    /// Executes a tiled `M × K × N` matmul on the array: weights are
    /// loaded tile-by-tile into the resident registers, data rows stream
    /// against them, per-column accumulator FIFOs fold K-tiles, and the
    /// activation units reduce the finished 25-bit sums to 8 bits.
    ///
    /// `data(m, k)` and `weight(k, n)` supply operands on demand (the
    /// Data Buffer's address-generation view); `bias`, when present, is
    /// indexed by `n` and staged at the product fraction width.
    ///
    /// # Panics
    ///
    /// Panics if a bias slice shorter than `n` is supplied.
    #[allow(clippy::too_many_arguments)]
    pub fn matmul(
        &mut self,
        data: &dyn Fn(usize, usize) -> i8,
        weight: &dyn Fn(usize, usize) -> i8,
        m: usize,
        k: usize,
        n: usize,
        bias: Option<&[i32]>,
        shift: u32,
        kind: ActivationKind,
    ) -> Tensor<i8> {
        let (mut outs, _) = self.matmul_batch(
            1,
            &|_img, mi, ki| data(mi, ki),
            weight,
            m,
            k,
            n,
            bias,
            shift,
            kind,
        );
        outs.pop().expect("batch of one")
    }

    /// Executes the same tiled matmul for a whole batch of data operands
    /// sharing one weight operand — the paper's "reuse weights" scenario
    /// (Fig. 12) generalized across inferences.
    ///
    /// Every weight tile is loaded into the resident registers **once**
    /// and all `batch` images' data rows stream back-to-back against it,
    /// so the Weight Buffer traffic and the per-tile load cycles are paid
    /// once per batch instead of once per image. `data(img, m, k)`
    /// supplies image `img`'s operands.
    ///
    /// Returns one `[m, n]` output tensor per image plus the per-image
    /// accumulator-saturation counts (attribution is exact because each
    /// image keeps its own accumulator FIFOs, mirroring a sequential
    /// run). Per-row arithmetic is identical to [`Accelerator::matmul`],
    /// so outputs are bit-exact against `batch` independent calls.
    ///
    /// Like the single-image engine, this always executes the real
    /// design point — the second weight register exists, so tiles *are*
    /// resident. The `DataflowOptions::weight_reuse` ablation is
    /// modelled analytically only
    /// ([`crate::timing::batch_matmul_cycles`]).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero or a bias slice shorter than `n` is
    /// supplied.
    #[allow(clippy::too_many_arguments)]
    pub fn matmul_batch(
        &mut self,
        batch: usize,
        data: &dyn Fn(usize, usize, usize) -> i8,
        weight: &dyn Fn(usize, usize) -> i8,
        m: usize,
        k: usize,
        n: usize,
        bias: Option<&[i32]>,
        shift: u32,
        kind: ActivationKind,
    ) -> (Vec<Tensor<i8>>, Vec<u64>) {
        self.matmul_batch_inner(batch, data, weight, m, k, n, bias, shift, kind, false)
    }

    /// The shared tiled-matmul implementation. `weights_offchip` marks
    /// the weight operand as DRAM-resident (the network's parameter
    /// layers): its tiles then stream through the memory hierarchy's
    /// double-buffered prefetcher and are charged to the off-chip
    /// counters. On-chip operands (routing's `û`/`v_j`, and every weight
    /// through the public [`Accelerator::matmul_batch`]) touch only the
    /// scratchpads.
    ///
    /// The memory hierarchy never changes functional results and never
    /// touches the ticked array: its stalls accumulate separately in
    /// `memory_stall_cycles`, and are identically zero under
    /// `IdealMemory`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn matmul_batch_inner(
        &mut self,
        batch: usize,
        data: &dyn Fn(usize, usize, usize) -> i8,
        weight: &dyn Fn(usize, usize) -> i8,
        m: usize,
        k: usize,
        n: usize,
        bias: Option<&[i32]>,
        shift: u32,
        kind: ActivationKind,
        weights_offchip: bool,
    ) -> (Vec<Tensor<i8>>, Vec<u64>) {
        assert!(batch > 0, "batch must be non-empty");
        if let Some(b) = bias {
            assert!(b.len() >= n, "bias shorter than output width");
        }
        let (rows, cols) = (self.cfg.rows, self.cfg.cols);
        debug_assert!(
            rows * cols <= self.cfg.weight_buffer_bytes,
            "a {rows}x{cols} weight tile exceeds the {} B Weight Buffer",
            self.cfg.weight_buffer_bytes
        );
        self.rec.begin(SpanDetail::Phases, "matmul");
        // The whole matmul's tile schedule through the memory hierarchy
        // — the same deterministic replay the closed-form model uses
        // (`timing::matmul_mem_stalls`), so engine and model agree
        // exactly by construction.
        let geometry = MatmulGeometry {
            m,
            k,
            n,
            batch,
            rows,
            cols,
            weights_offchip,
            // The ticked engine executes tiles serially; its windows
            // are the serial schedule regardless of the dataflow flag.
            schedule: TileSchedule::Serial,
        };
        // The recorded variant is the same replay plus stall-window
        // metrics; stalls are charged as one lump at matmul start
        // (exactly where the engine accounts them).
        let stall = if self.rec.is_enabled() {
            self.memory.matmul_recorded(&geometry, &mut self.rec)
        } else {
            self.memory.matmul(&geometry)
        };
        self.memory_stall_cycles += stall;
        self.rec.begin(SpanDetail::Tiles, "mem-stall");
        self.rec.advance(CycleKind::MemStall, stall);
        self.rec.end(SpanDetail::Tiles);
        if weights_offchip {
            // Each weight crosses the off-chip channel once per batch.
            self.traffic.read(MemoryKind::Dram, u64_from(k * n));
        }
        let mut outs: Vec<Tensor<i8>> = (0..batch).map(|_| Tensor::zeros(&[m, n])).collect();
        let mut saturations = vec![0u64; batch];

        if self.cfg.backend == EngineBackend::Functional {
            self.matmul_batch_functional(
                batch,
                data,
                weight,
                m,
                k,
                n,
                bias,
                shift,
                kind,
                &mut outs,
                &mut saturations,
            );
            self.rec.end(SpanDetail::Phases);
            return (outs, saturations);
        }

        let mut tile_seq = 0u64;
        for n0 in (0..n).step_by(cols) {
            let nt = cols.min(n - n0);
            // One accumulator set per image: keeps K-tile folding — and
            // therefore saturation attribution — identical to a
            // sequential per-image run.
            let mut accs: Vec<Vec<AccumulatorUnit>> = (0..batch)
                .map(|_| (0..nt).map(|_| AccumulatorUnit::new(m.max(1))).collect())
                .collect();

            for (kt_idx, k0) in (0..k).step_by(rows).enumerate() {
                let kt = rows.min(k - k0);
                // Weight tile rows (zero-padded to the array width by the
                // array itself), loaded once for the whole batch.
                let tile: Vec<Vec<i8>> = (0..kt)
                    .map(|kr| (0..nt).map(|nc| weight(k0 + kr, n0 + nc)).collect())
                    .collect();
                let tile_refs: Vec<&[i8]> = tile.iter().map(|r| r.as_slice()).collect();
                self.rec
                    .begin_arg(SpanDetail::Tiles, "tile", "seq", tile_seq);
                tile_seq += 1;
                self.rec.begin(SpanDetail::Tiles, "load");
                let c0 = self.array.cycles();
                self.array.load_weights(&tile_refs);
                self.rec.advance(CycleKind::Array, self.array.cycles() - c0);
                self.rec.end(SpanDetail::Tiles);
                self.traffic
                    .read(MemoryKind::WeightBuffer, u64_from(kt * nt));

                // Stream every image's data rows for this K-slice
                // against the resident tile, image-major.
                let rows_data: Vec<Vec<i8>> = (0..batch * m)
                    .map(|ri| {
                        let (img, mi) = (ri / m.max(1), ri % m.max(1));
                        (0..kt).map(|ki| data(img, mi, k0 + ki)).collect()
                    })
                    .collect();
                self.traffic
                    .read(MemoryKind::DataBuffer, u64_from(batch * m * kt));
                self.rec.begin(SpanDetail::Tiles, "stream");
                let c0 = self.array.cycles();
                let psums = self.array.stream(&rows_data);
                self.rec.advance(CycleKind::Array, self.array.cycles() - c0);
                self.rec.end(SpanDetail::Tiles);
                self.rec.end(SpanDetail::Tiles); // tile

                for (ri, prow) in psums.iter().enumerate() {
                    for (c, acc) in accs[ri / m.max(1)].iter_mut().enumerate() {
                        if kt_idx == 0 {
                            acc.push_new(prow[c]);
                        } else {
                            acc.fold(prow[c]);
                        }
                    }
                }
            }

            // Drain through the activation units, image by image.
            for (img, image_accs) in accs.iter_mut().enumerate() {
                self.rec
                    .begin_arg(SpanDetail::Tiles, "drain", "img", u64_from(img));
                for (c, acc) in image_accs.iter_mut().enumerate() {
                    let events = acc.saturation_events();
                    saturations[img] += events;
                    self.accumulator_saturations += events;
                    let b = bias.map_or(0i64, |b| i64::from(b[n0 + c]));
                    for (mi, raw) in acc.drain().into_iter().enumerate() {
                        let raw = self.apply_acc_fault(raw);
                        outs[img][[mi, n0 + c]] = self.activation.reduce(raw + b, shift, kind);
                    }
                }
                let drain_cycles = ActivationUnit::reduce_cycles(u64_from(m));
                self.activation_cycles += drain_cycles;
                self.rec.advance(CycleKind::Activation, drain_cycles);
                self.rec.end(SpanDetail::Tiles);
            }
        }
        self.rec.end(SpanDetail::Phases);
        (outs, saturations)
    }

    /// The `Functional` backend's tile evaluator: bit-identical to the
    /// ticked schedule above, at wall-clock speed — data-parallel
    /// across panel rows and explicitly SIMD inside them (the
    /// `kernel` module; host knobs in
    /// [`crate::FunctionalOptions`]).
    ///
    /// Exactness argument, piece by piece:
    ///
    /// - **In-tile fold.** The ticked array folds one tile column as
    ///   `psum' = saturate_25(psum + d·w)` through
    ///   [`Pe::mac_step`](crate::Pe::mac_step) in fixed north→south
    ///   order. Every running prefix is bounded by `kt · 128²`, so for
    ///   `kt ≤ 1023` no step can reach the ±2^24 clip and the
    ///   saturating fold *is* the exact dot product — order-free, so
    ///   scalar, row-blocked, zero-skipping, and `pmaddwd` evaluations
    ///   are all bit-identical. Taller tiles (arrays over 1023 rows)
    ///   take the literal per-step `mac_step` fold
    ///   (`kernel::RowKernel::MacSerial`). Zero operands contribute +0
    ///   to an in-range psum, so skipping all-zero data rows cannot
    ///   change either fold.
    /// - **K-tile accumulation.** [`AccumulatorUnit`] saturates each
    ///   fold (`sat(acc + tile_psum)`) and counts an event when the
    ///   clamp engages; the flat per-(image, row, column) accumulators
    ///   here apply the identical chain in the identical tile order
    ///   with identical event counting (starting from `acc = 0`, the
    ///   first fold's raw value is the tile psum itself — `push_new`
    ///   semantics, whose clamp provably never engages on an in-range
    ///   psum).
    /// - **Row partitioning.** Threads split the panel into contiguous
    ///   row chunks; every row's whole fold chain runs on one thread
    ///   in tile order, so the per-element fold order — and therefore
    ///   outputs, cycles, traffic, and clip attribution — is
    ///   byte-identical for any thread count. Clip events are counted
    ///   per row and summed per image in image order (a commutative
    ///   sum either way).
    /// - **Cycle charge.** Per tile, exactly the edges the ticked
    ///   serial schedule executes: `R + 1` per weight load and
    ///   `batch·M + R + C` per stream (`SystolicArray::load_weights` /
    ///   `stream`), so `array_cycles()` deltas — and everything built
    ///   on them — are equal, not merely equivalent. The accounting
    ///   loop runs serially before the row sweep: counter totals are
    ///   the only observable, and they are pure sums.
    /// - **Data staging.** Operands are staged once per matmul into a
    ///   flat row-major panel (the ticked path re-invokes the operand
    ///   closures per N-tile revisit); traffic is charged per tile
    ///   from the same formulas either way. Weight tiles are staged
    ///   per N-tile (plus a pair-interleaved `i16` copy when the
    ///   AVX2 kernels will consume them).
    #[allow(clippy::too_many_arguments)]
    fn matmul_batch_functional(
        &mut self,
        batch: usize,
        data: &dyn Fn(usize, usize, usize) -> i8,
        weight: &dyn Fn(usize, usize) -> i8,
        m: usize,
        k: usize,
        n: usize,
        bias: Option<&[i32]>,
        shift: u32,
        kind: ActivationKind,
        outs: &mut [Tensor<i8>],
        saturations: &mut [u64],
    ) {
        let (rows, cols) = (self.cfg.rows, self.cfg.cols);
        let total_rows = batch * m;
        let opts = self.cfg.functional;
        let simd_ok = kernel::simd_enabled(opts);
        // Host wall-clock annotation: read host clocks only when
        // explicitly requested, and only into span args — never into
        // any simulated quantity.
        let host = self.rec.host_timing();
        let (mut stage_ns, mut sweep_ns) = (0u64, 0u64);
        let mut tile_seq = 0u64;

        // Stage the whole data panel once, row-major: tile slices below
        // are plain subslices, and the operand closure runs once per
        // element instead of once per N-tile visit.
        let mut panel: Vec<i8> = Vec::with_capacity(total_rows * k);
        for ri in 0..total_rows {
            let (img, mi) = (ri / m.max(1), ri % m.max(1));
            panel.extend((0..k).map(|ki| data(img, mi, ki)));
        }
        // A zero data element contributes +0 to an in-range psum, so
        // the fixed-width kernels may skip it: pick per matmul between
        // the dense kernels and the zero-skipping ones. Both are exact
        // — this is a speed choice only, overridable through
        // `FunctionalOptions::kernel`. The break-even point differs by
        // path: the scalar kernels profit from skipping once ~1/4 of
        // operands are zero, while the SIMD kernels skip at data-*pair*
        // granularity and trade away the 4-row weight-reuse block, so
        // they need mostly-zero pairs (~3/4 zeros; post-ReLU MNIST
        // panels at ~50% zeros stay on the dense blocked kernel).
        let zeros = panel.iter().filter(|&&d| d == 0).count();
        let sparse_data = if simd_ok {
            zeros * 4 >= panel.len().max(1) * 3
        } else {
            zeros * 4 >= panel.len().max(1)
        };
        // Sign-extended copy for the SIMD kernels: adjacent element
        // pairs become single `i32` broadcast operands. Values are
        // identical — widening is exact — so which panel a kernel
        // reads can never change results.
        let panel_wide: Vec<i16> = if simd_ok {
            panel.iter().map(|&d| d as i16).collect()
        } else {
            Vec::new()
        };

        let mut acc_flat: Vec<i64> = Vec::new(); // per-(ri, c) K-tile accumulators
        let mut row_events: Vec<u64> = Vec::new(); // per-row clip events

        for n0 in (0..n).step_by(cols) {
            let nt = cols.min(n - n0);
            acc_flat.clear();
            acc_flat.resize(total_rows * nt, 0);
            row_events.clear();
            row_events.resize(total_rows, 0);

            // Accounting and weight staging, K-tile by K-tile in the
            // ticked serial order. Traffic reads and array-cycle
            // charges are pure counter additions, so hoisting them out
            // of the (possibly parallel) row sweep preserves every
            // observable total. Column-outer fill: the parameter
            // layers store weights `[out_ch][patch]`-major, so walking
            // `kr` innermost reads each channel's taps contiguously
            // instead of striding the whole weight tensor per element
            // (the tile itself is ≤ R·C bytes — write order is free).
            // lint:allow(determinism, host-gated wall-clock probe: runs only when host_timing is requested and never feeds simulated results)
            let t0 = host.then(std::time::Instant::now);
            let mut tiles: Vec<kernel::KTile> = Vec::with_capacity(k.div_ceil(rows.max(1)));
            for k0 in (0..k).step_by(rows) {
                let kt = rows.min(k - k0);
                self.traffic
                    .read(MemoryKind::WeightBuffer, u64_from(kt * nt));
                self.traffic
                    .read(MemoryKind::DataBuffer, u64_from(total_rows * kt));
                let load_edges = self.array.load_edges();
                let stream_edges = self.array.stream_edges(total_rows);
                self.array.advance_cycles(load_edges + stream_edges);
                // The same tile → {load, stream} span sequence the
                // ticked schedule records, from the same edge counts —
                // backends produce identical span trees by
                // construction.
                self.rec
                    .begin_arg(SpanDetail::Tiles, "tile", "seq", tile_seq);
                tile_seq += 1;
                self.rec.begin(SpanDetail::Tiles, "load");
                self.rec.advance(CycleKind::Array, load_edges);
                self.rec.end(SpanDetail::Tiles);
                self.rec.begin(SpanDetail::Tiles, "stream");
                self.rec.advance(CycleKind::Array, stream_edges);
                self.rec.end(SpanDetail::Tiles);
                self.rec.end(SpanDetail::Tiles); // tile
                let mut w = vec![0i8; kt * nt];
                for nc in 0..nt {
                    for kr in 0..kt {
                        w[kr * nt + nc] = weight(k0 + kr, n0 + nc);
                    }
                }
                tiles.push(kernel::KTile::stage(
                    k0,
                    kt,
                    nt,
                    w,
                    sparse_data,
                    opts,
                    simd_ok,
                ));
            }
            if let Some(t) = t0 {
                // lint:allow(cast-audit, truncating u128 nanoseconds to u64 saturates after ~584 years of host wall-clock)
                stage_ns += t.elapsed().as_nanos() as u64;
            }
            // lint:allow(determinism, host-gated wall-clock probe: runs only when host_timing is requested and never feeds simulated results)
            let t0 = host.then(std::time::Instant::now);

            // The row sweep: serial, or partitioned into contiguous
            // row chunks across scoped OS threads (the `pool.rs`
            // pattern). Rows are independent and each row's whole fold
            // chain runs on one thread in tile order, so any partition
            // is byte-identical to the serial sweep.
            let threads = kernel::effective_threads(opts.threads, total_rows, k, nt);
            if threads <= 1 {
                kernel::process_rows(
                    k,
                    nt,
                    &tiles,
                    &panel,
                    &panel_wide,
                    0,
                    total_rows,
                    &mut acc_flat,
                    &mut row_events,
                );
            } else {
                let rows_per = total_rows.div_ceil(threads);
                let (tiles_ref, panel_ref) = (&tiles, panel.as_slice());
                let wide_ref = panel_wide.as_slice();
                std::thread::scope(|scope| {
                    let handles: Vec<_> = acc_flat
                        .chunks_mut(rows_per * nt)
                        .zip(row_events.chunks_mut(rows_per))
                        .enumerate()
                        .map(|(ci, (acc_chunk, ev_chunk))| {
                            scope.spawn(move || {
                                kernel::process_rows(
                                    k,
                                    nt,
                                    tiles_ref,
                                    panel_ref,
                                    wide_ref,
                                    ci * rows_per,
                                    ev_chunk.len(),
                                    acc_chunk,
                                    ev_chunk,
                                );
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().expect("functional row worker panicked");
                    }
                });
            }
            if let Some(t) = t0 {
                // lint:allow(cast-audit, truncating u128 nanoseconds to u64 saturates after ~584 years of host wall-clock)
                sweep_ns += t.elapsed().as_nanos() as u64;
            }

            // Drain through the activation units, image by image —
            // the same sequence (and activation-cycle charge) as the
            // ticked drain above. With `k == 0` no K-tile ever ran, so
            // like the ticked path's empty accumulator FIFOs nothing
            // is written (in particular, no bias-only outputs), but
            // the per-image drain charge is still paid.
            let drained_rows = if k == 0 { 0 } else { m };
            for img in 0..batch {
                self.rec
                    .begin_arg(SpanDetail::Tiles, "drain", "img", u64_from(img));
                let events: u64 = row_events[img * m..img * m + m].iter().sum();
                saturations[img] += events;
                self.accumulator_saturations += events;
                for c in 0..nt {
                    let b = bias.map_or(0i64, |b| i64::from(b[n0 + c]));
                    for mi in 0..drained_rows {
                        let raw = self.apply_acc_fault(acc_flat[(img * m + mi) * nt + c]);
                        outs[img][[mi, n0 + c]] = self.activation.reduce(raw + b, shift, kind);
                    }
                }
                let drain_cycles = ActivationUnit::reduce_cycles(u64_from(m));
                self.activation_cycles += drain_cycles;
                self.rec.advance(CycleKind::Activation, drain_cycles);
                self.rec.end(SpanDetail::Tiles);
            }
        }
        // At `Layers` detail no matmul span is open, so the host
        // annotations would pile up on the layer span — skip them.
        if host && self.rec.detail() >= SpanDetail::Phases {
            self.rec.annotate("host_stage_ns", stage_ns);
            self.rec.annotate("host_sweep_ns", sweep_ns);
        }
    }

    /// Squashes every primary capsule of one image through the
    /// activation units, charging the Sec. IV-C cycle cost.
    pub(crate) fn squash_primary(
        &mut self,
        net: &CapsNetConfig,
        pc_out: &Tensor<i8>,
    ) -> Tensor<i8> {
        self.rec.begin(SpanDetail::Phases, "squash");
        let raw_caps = primary_capsules(pc_out, net.pc_channels, net.pc_caps_dim);
        let dim = net.pc_caps_dim;
        let mut capsules: Tensor<i8> = Tensor::zeros(raw_caps.shape());
        for (dst, src) in capsules
            .data_mut()
            .chunks_mut(dim)
            .zip(raw_caps.data().chunks(dim))
        {
            let (v, _) = self.activation.squash(src);
            dst.copy_from_slice(&v);
        }
        let caps_count = u64_from(net.num_primary_caps());
        let au = u64_from(self.cfg.activation_units);
        let cycles = caps_count.div_ceil(au) * ActivationUnit::squash_cycles(u64_from(dim));
        self.activation_cycles += cycles;
        self.rec.advance(CycleKind::Activation, cycles);
        self.rec.end(SpanDetail::Phases);
        capsules
    }

    /// Runs the routing-by-agreement phase for one image's predictions,
    /// appending the per-step cycle counts to `steps`. Shared verbatim by
    /// [`Accelerator::run_inference`] and the batched path, which is what
    /// keeps the two bit-identical.
    pub(crate) fn route_class_caps(
        &mut self,
        net: &CapsNetConfig,
        u_hat: &Tensor<i8>,
        steps: &mut Vec<(RoutingStep, u64)>,
    ) -> RoutingOutcome {
        let ncfg = self.cfg.numeric;
        let (in_caps, classes, out_dim) =
            (net.num_primary_caps(), net.num_classes, net.class_caps_dim);
        let u_hat_bytes = u64_from(in_caps * classes * out_dim);
        let mut macs = 0u64;
        let variant = if self.cfg.dataflow.skip_first_softmax {
            RoutingVariant::SkipFirstSoftmax
        } else {
            RoutingVariant::Original
        };
        let mut logits: Tensor<i8> = Tensor::zeros(&[in_caps, classes]);
        let mut couplings: Tensor<i8> = Tensor::zeros(&[in_caps, classes]);
        let mut class_caps: Tensor<i8> = Tensor::zeros(&[classes, out_dim]);
        let mut s_norms = vec![0u8; classes];
        // Snapshot capture is observation only: under
        // `TraceLevel::Outputs` the four per-iteration tensor clones are
        // skipped entirely and `iterations` stays empty, with final
        // outputs, cycles and traffic untouched (pinned by
        // `untraced_run_matches_traced_outputs`).
        let tracing = self.cfg.trace_level == TraceLevel::Full;
        let mut iterations = Vec::with_capacity(if tracing { net.routing_iterations } else { 0 });
        let coupling_bytes = u64_from(in_caps * classes);

        for r in 0..net.routing_iterations {
            // Softmax (or the direct initialization on iteration 1).
            if r == 0 && variant == RoutingVariant::SkipFirstSoftmax {
                couplings
                    .data_mut()
                    .fill(self.activation.pipeline().uniform_coupling(classes));
                self.traffic
                    .write(MemoryKind::RoutingBuffer, coupling_bytes);
                // These initialization-transfer cycles exist only in
                // the step table (no engine counter moves), so the
                // recorder charges them as `Io`.
                let cycles = coupling_bytes.div_ceil(self.cfg.routing_buf_bw);
                self.rec
                    .begin_arg(SpanDetail::Phases, "softmax", "i", u64_from(r + 1));
                self.rec.advance(CycleKind::Io, cycles);
                self.rec.end(SpanDetail::Phases);
                steps.push((RoutingStep::Softmax(r + 1), cycles));
            } else {
                for i in 0..in_caps {
                    let row = &logits.data()[i * classes..(i + 1) * classes];
                    let sm = self.activation.softmax(row);
                    couplings.data_mut()[i * classes..(i + 1) * classes].copy_from_slice(&sm);
                }
                self.traffic.read(MemoryKind::RoutingBuffer, coupling_bytes);
                self.traffic
                    .write(MemoryKind::RoutingBuffer, coupling_bytes);
                let cycles = u64_from(in_caps).div_ceil(u64_from(self.cfg.activation_units))
                    * ActivationUnit::softmax_cycles(u64_from(classes));
                self.activation_cycles += cycles;
                self.rec
                    .begin_arg(SpanDetail::Phases, "softmax", "i", u64_from(r + 1));
                self.rec.advance(CycleKind::Activation, cycles);
                self.rec.end(SpanDetail::Phases);
                steps.push((RoutingStep::Softmax(r + 1), cycles));
            }

            // Weighted sums s_j (Fig. 12b on the first iteration, 12d —
            // feedback reuse — afterwards). The step's cycle count is
            // the array delta only: the matmuls' activation-drain
            // charges are excluded from ClassCaps accounting, so the
            // recorder masks them to keep the span summing to the step
            // (their memory stalls *do* land in the layer's stall
            // delta, so `MemStall` stays live).
            self.rec
                .begin_arg(SpanDetail::Phases, "sum", "i", u64_from(r + 1));
            self.rec.suppress(CycleKind::Activation);
            let c0 = self.array.cycles();
            if r == 0 || !self.cfg.dataflow.routing_feedback {
                // û read from the Data Buffer (or re-read from memory
                // when the feedback ablation is off).
                if r > 0 {
                    self.traffic.read(MemoryKind::DataMemory, u_hat_bytes);
                }
                self.traffic.read(MemoryKind::DataBuffer, u_hat_bytes);
            }
            self.traffic.read(MemoryKind::RoutingBuffer, coupling_bytes);
            let mut s_t: Tensor<i8> = Tensor::zeros(&[classes, out_dim]);
            let u_ref = &u_hat;
            let c_ref = &couplings;
            for j in 0..classes {
                let s_row = self.matmul(
                    &|_mi, i| c_ref.data()[i * classes + j],
                    &|i, e| u_ref.data()[(i * classes + j) * out_dim + e],
                    1,
                    in_caps,
                    out_dim,
                    None,
                    ncfg.coupling_mac_shift(),
                    ActivationKind::Identity,
                );
                s_t.data_mut()[j * out_dim..(j + 1) * out_dim].copy_from_slice(s_row.data());
            }
            macs += u64_from(classes * out_dim * in_caps);
            self.rec.unsuppress(CycleKind::Activation);
            self.rec.end(SpanDetail::Phases);
            steps.push((RoutingStep::Sum(r + 1), self.array.cycles() - c0));

            // Squash through the activation units.
            self.rec
                .begin_arg(SpanDetail::Phases, "squash", "i", u64_from(r + 1));
            for (j, s_norm) in s_norms.iter_mut().enumerate() {
                let (v, norm) = self
                    .activation
                    .squash(&s_t.data()[j * out_dim..(j + 1) * out_dim]);
                class_caps.data_mut()[j * out_dim..(j + 1) * out_dim].copy_from_slice(&v);
                *s_norm = norm;
            }
            let squash_cycles = u64_from(classes).div_ceil(u64_from(self.cfg.activation_units))
                * ActivationUnit::squash_cycles(u64_from(out_dim));
            self.activation_cycles += squash_cycles;
            self.rec.advance(CycleKind::Activation, squash_cycles);
            self.rec.end(SpanDetail::Phases);
            self.traffic
                .write(MemoryKind::RoutingBuffer, u64_from(classes * out_dim));
            steps.push((RoutingStep::Squash(r + 1), squash_cycles));

            // Logit update (Fig. 12c: û reused via the feedback path).
            let logits_after_update = if r + 1 < net.routing_iterations {
                // Array-delta step like Sum: same activation mask.
                self.rec
                    .begin_arg(SpanDetail::Phases, "update", "i", u64_from(r + 1));
                self.rec.suppress(CycleKind::Activation);
                let c0 = self.array.cycles();
                if !self.cfg.dataflow.routing_feedback {
                    self.traffic.read(MemoryKind::DataMemory, u_hat_bytes);
                }
                self.traffic
                    .read(MemoryKind::RoutingBuffer, u64_from(classes * out_dim));
                let v_ref = &class_caps;
                for j in 0..classes {
                    let deltas = self.matmul(
                        &|i, e| u_ref.data()[(i * classes + j) * out_dim + e],
                        &|e, _| v_ref.data()[j * out_dim + e],
                        in_caps,
                        out_dim,
                        1,
                        None,
                        ncfg.update_shift(),
                        ActivationKind::Identity,
                    );
                    for i in 0..in_caps {
                        let cur = logits.data()[i * classes + j];
                        logits.data_mut()[i * classes + j] = cur.saturating_add(deltas.data()[i]);
                    }
                }
                macs += u64_from(classes * in_caps * out_dim);
                self.traffic.read(MemoryKind::RoutingBuffer, coupling_bytes);
                self.traffic
                    .write(MemoryKind::RoutingBuffer, coupling_bytes);
                self.rec.unsuppress(CycleKind::Activation);
                self.rec.end(SpanDetail::Phases);
                steps.push((RoutingStep::Update(r + 1), self.array.cycles() - c0));
                tracing.then(|| logits.clone())
            } else {
                None
            };

            if tracing {
                iterations.push(RoutingIterationTrace {
                    couplings: couplings.clone(),
                    s: s_t,
                    v: class_caps.clone(),
                    norms: s_norms.clone(),
                    logits_after_update,
                });
            }
        }

        // Final classification: norm unit over the squashed capsules.
        let final_norms: Vec<u8> = (0..classes)
            .map(|j| {
                self.activation
                    .norm(&class_caps.data()[j * out_dim..(j + 1) * out_dim])
            })
            .collect();
        // This norm charge appears in neither the step table nor any
        // LayerRun total (ClassCaps reports activation_cycles: 0), so
        // the recorder deliberately does not advance for it.
        self.activation_cycles += u64_from(classes).div_ceil(u64_from(self.cfg.activation_units))
            * ActivationUnit::norm_cycles(u64_from(out_dim));
        let predicted = final_norms
            .iter()
            .enumerate()
            .max_by_key(|&(i, &nn)| (nn, std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .expect("at least one class");

        RoutingOutcome {
            iterations,
            couplings,
            class_caps,
            final_norms,
            predicted,
            macs,
        }
    }

    /// Runs a complete CapsuleNet inference cycle-accurately.
    ///
    /// The returned [`InferenceRun::trace`] is bit-exact against
    /// [`capsacc_capsnet::infer_q8_traced`] with the same parameters,
    /// pipeline and routing variant (derived from
    /// `dataflow.skip_first_softmax`).
    ///
    /// Implemented as [`Accelerator::run_batch`] with a batch of one —
    /// there is a single layer-orchestration code path, so the
    /// sequential and batched engines cannot drift apart.
    ///
    /// # Panics
    ///
    /// Panics if `image` is not `[1, input_side, input_side]` (the
    /// batched entry point [`Accelerator::run_batch`] reports the same
    /// condition as a [`crate::BatchError`] instead).
    pub fn run_inference(
        &mut self,
        net: &CapsNetConfig,
        qparams: &QuantizedParams,
        image: &Tensor<f32>,
    ) -> InferenceRun {
        let mut run = self
            .run_batch(net, qparams, std::slice::from_ref(image))
            .unwrap_or_else(|e| panic!("run_inference: {e}"));
        InferenceRun {
            trace: run.traces.pop().expect("batch of one"),
            layers: run.layers,
            steps: run.steps,
            traffic: run.traffic,
            memory: run.memory,
            accumulator_saturations: run.accumulator_saturations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;
    use crate::timing::{batch_matmul_cycles, matmul_cycles, MatmulShape};
    use capsacc_capsnet::{infer_q8_traced, CapsNetParams};
    use capsacc_tensor::qops;
    use proptest::prelude::*;

    fn test_acc() -> Accelerator {
        Accelerator::new(AcceleratorConfig::test_4x4())
    }

    #[test]
    fn matmul_bit_exact_vs_reference() {
        let mut acc = test_acc();
        let a = Tensor::from_fn(&[5, 9], |i| ((i[0] * 9 + i[1]) as i8).wrapping_mul(7));
        let b = Tensor::from_fn(&[9, 6], |i| ((i[0] * 6 + i[1]) as i8).wrapping_sub(50));
        let out = acc.matmul(
            &|m, k| a[[m, k]],
            &|k, n| b[[k, n]],
            5,
            9,
            6,
            None,
            6,
            ActivationKind::Identity,
        );
        let (exact, stats) = qops::matmul_q8(&a, &b, 6);
        assert_eq!(stats.saturations, 0);
        assert_eq!(out, exact);
    }

    #[test]
    fn matmul_with_bias_and_relu() {
        let mut acc = test_acc();
        let a = Tensor::from_vec(&[1, 2], vec![32i8, 32]).unwrap();
        let b = Tensor::from_vec(&[2, 2], vec![-64i8, 64, -64, 64]).unwrap();
        let bias = vec![1024i32, -4096];
        let out = acc.matmul(
            &|m, k| a[[m, k]],
            &|k, n| b[[k, n]],
            1,
            2,
            2,
            Some(&bias),
            6,
            ActivationKind::Relu,
        );
        // col 0: 2·(1.0·-1.0) + 0.5 = -1.5 → ReLU → 0.
        // col 1: 2·(1.0·1.0) − 2.0 = 0 → 0.
        assert_eq!(out.data(), &[0, 0]);
        let out = acc.matmul(
            &|m, k| a[[m, k]],
            &|k, n| b[[k, n]],
            1,
            2,
            2,
            Some(&bias),
            6,
            ActivationKind::Identity,
        );
        assert_eq!(out.data(), &[-48, 0]);
    }

    #[test]
    fn matmul_cycles_match_serial_formula() {
        let mut cfg = AcceleratorConfig::test_4x4();
        cfg.dataflow.pipelined_tiles = false;
        for (m, k, n) in [(1, 4, 4), (3, 9, 6), (7, 2, 10), (5, 17, 3)] {
            let mut acc = Accelerator::new(cfg);
            let before = acc.array_cycles();
            acc.matmul(
                &|_, _| 1,
                &|_, _| 1,
                m,
                k,
                n,
                None,
                6,
                ActivationKind::Identity,
            );
            let got = acc.array_cycles() - before;
            let expect = matmul_cycles(
                MatmulShape {
                    m: m as u64,
                    k: k as u64,
                    n: n as u64,
                },
                &cfg,
            );
            assert_eq!(got, expect, "cycles for ({m},{k},{n})");
        }
    }

    #[test]
    fn weight_traffic_counts_each_weight_once() {
        let mut acc = test_acc();
        acc.matmul(
            &|_, _| 1,
            &|_, _| 1,
            5,
            8,
            8,
            None,
            6,
            ActivationKind::Identity,
        );
        assert_eq!(
            acc.traffic().counter(MemoryKind::WeightBuffer).read_bytes,
            64
        );
        // Data re-streamed once per (K,N) tile pair: 2 N-tiles × 2 K-tiles
        // × 5 rows × 4 elements.
        assert_eq!(
            acc.traffic().counter(MemoryKind::DataBuffer).read_bytes,
            2 * 2 * 5 * 4
        );
    }

    #[test]
    fn full_inference_trace_is_bit_exact_vs_reference() {
        let net = CapsNetConfig::tiny();
        let cfg = AcceleratorConfig::test_4x4();
        let params = CapsNetParams::generate(&net, 11);
        let qparams = params.quantize(cfg.numeric);
        let pipeline = QuantPipeline::new(cfg.numeric);
        let image = Tensor::from_fn(&[1, 12, 12], |i| {
            (((i[1] * 5 + i[2] * 3) % 13) as f32 / 13.0).min(1.0)
        });

        let reference = infer_q8_traced(
            &net,
            &qparams,
            &pipeline,
            &image,
            RoutingVariant::SkipFirstSoftmax,
        );
        let mut acc = Accelerator::new(cfg);
        let run = acc.run_inference(&net, &qparams, &image);

        assert_eq!(run.accumulator_saturations, 0);
        assert_eq!(run.trace.input_q, reference.input_q);
        assert_eq!(run.trace.conv1_out, reference.conv1_out);
        assert_eq!(run.trace.pc_out, reference.pc_out);
        assert_eq!(run.trace.capsules, reference.capsules);
        assert_eq!(run.trace.u_hat, reference.u_hat);
        assert_eq!(run.trace.iterations, reference.iterations);
        assert_eq!(run.trace.output.class_norms, reference.output.class_norms);
        assert_eq!(run.trace.output.predicted, reference.output.predicted);
        assert_eq!(run.trace.output.class_caps, reference.output.class_caps);
        assert_eq!(run.trace.output.couplings, reference.output.couplings);
        assert_eq!(run.trace.output.stats.macs, reference.output.stats.macs);
    }

    #[test]
    fn original_variant_also_bit_exact() {
        let net = CapsNetConfig::tiny();
        let mut cfg = AcceleratorConfig::test_4x4();
        cfg.dataflow.skip_first_softmax = false;
        let qparams = CapsNetParams::generate(&net, 12).quantize(cfg.numeric);
        let pipeline = QuantPipeline::new(cfg.numeric);
        let image = Tensor::from_fn(&[1, 12, 12], |i| (i[1] as f32 - i[2] as f32).abs() / 12.0);

        let reference =
            infer_q8_traced(&net, &qparams, &pipeline, &image, RoutingVariant::Original);
        let mut acc = Accelerator::new(cfg);
        let run = acc.run_inference(&net, &qparams, &image);
        assert_eq!(run.trace, reference);
    }

    #[test]
    fn step_sequence_matches_fig17() {
        let net = CapsNetConfig::tiny();
        let cfg = AcceleratorConfig::test_4x4();
        let qparams = CapsNetParams::generate(&net, 13).quantize(cfg.numeric);
        let image = Tensor::from_fn(&[1, 12, 12], |i| (i[1] + i[2]) as f32 / 24.0);
        let mut acc = Accelerator::new(cfg);
        let run = acc.run_inference(&net, &qparams, &image);
        let names: Vec<String> = run.steps.iter().map(|(s, _)| s.to_string()).collect();
        assert_eq!(
            names,
            vec![
                "Load", "FC", "Softmax1", "Sum1", "Squash1", "Update1", "Softmax2", "Sum2",
                "Squash2", "Update2", "Softmax3", "Sum3", "Squash3",
            ]
        );
        assert_eq!(run.layers.len(), 3);
        assert!(run.layers.iter().all(|l| l.cycles() > 0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Extreme-but-valid shapes after the checked-cast audit
        /// (deep-K reductions hundreds of tiles long, wider than any
        /// layer in the paper's network): the closed-form model and the
        /// ticked engine must still agree cycle-exactly on serial
        /// tiles — the conversion to checked/`try_from` arithmetic
        /// changed no in-range value.
        #[test]
        fn extreme_shapes_model_and_engine_agree(
            m in 1usize..4,
            k in 1024usize..3072,
            n in 1usize..10,
            batch in 1usize..3,
        ) {
            let mut cfg = AcceleratorConfig::test_4x4();
            cfg.dataflow.pipelined_tiles = false;
            let mut acc = Accelerator::new(cfg);
            let before = acc.array_cycles();
            acc.matmul_batch(
                batch,
                &|img, mi, ki| ((img + mi + ki) % 5) as i8,
                &|ki, ni| ((ki ^ ni) % 7) as i8,
                m,
                k,
                n,
                None,
                6,
                ActivationKind::Identity,
            );
            let got = acc.array_cycles() - before;
            let expect = batch_matmul_cycles(
                MatmulShape { m: m as u64, k: k as u64, n: n as u64 },
                batch as u64,
                &cfg,
            );
            prop_assert_eq!(got, expect, "engine/model divergence at m={} k={} n={} b={}", m, k, n, batch);
        }
    }

    #[test]
    fn functional_backend_is_bit_identical_including_accounting() {
        // Same inference, both backends: not just the functional trace —
        // the *entire* InferenceRun (layer cycles, step cycles, traffic
        // counters, memory report, saturations) must be equal.
        let net = CapsNetConfig::tiny();
        let cfg = AcceleratorConfig::test_4x4();
        let qparams = CapsNetParams::generate(&net, 11).quantize(cfg.numeric);
        let image = Tensor::from_fn(&[1, 12, 12], |i| ((i[1] * 3 + i[2]) % 9) as f32 / 9.0);
        let mut ticked = Accelerator::new(cfg);
        let want = ticked.run_inference(&net, &qparams, &image);
        let mut fast_cfg = cfg;
        fast_cfg.backend = crate::EngineBackend::Functional;
        let mut functional = Accelerator::new(fast_cfg);
        let got = functional.run_inference(&net, &qparams, &image);
        assert_eq!(got, want);
        assert_eq!(functional.array_cycles(), ticked.array_cycles());
    }

    #[test]
    fn functional_matmul_charges_ticked_cycles() {
        // Tile-by-tile cycle charging equals the ticked serial schedule
        // (and therefore the closed-form serial formula) on shapes with
        // ragged tiles.
        for (m, k, n) in [(1, 4, 4), (3, 9, 6), (7, 2, 10), (5, 17, 3)] {
            let mut cfg = AcceleratorConfig::test_4x4();
            cfg.backend = crate::EngineBackend::Functional;
            let mut acc = Accelerator::new(cfg);
            let out_fun = acc.matmul(
                &|mi, ki| ((mi * 5 + ki) % 17) as i8,
                &|ki, ni| ((ki * 3 + ni) % 13) as i8,
                m,
                k,
                n,
                None,
                6,
                ActivationKind::Identity,
            );
            let mut reference = Accelerator::new(AcceleratorConfig::test_4x4());
            let out_ref = reference.matmul(
                &|mi, ki| ((mi * 5 + ki) % 17) as i8,
                &|ki, ni| ((ki * 3 + ni) % 13) as i8,
                m,
                k,
                n,
                None,
                6,
                ActivationKind::Identity,
            );
            assert_eq!(
                acc.array_cycles(),
                reference.array_cycles(),
                "({m},{k},{n})"
            );
            assert_eq!(out_fun, out_ref, "({m},{k},{n})");
        }
    }

    #[test]
    fn degenerate_zero_k_matmul_matches_ticked() {
        // k == 0 means no K-tile ever runs: the ticked path's FIFOs
        // drain empty, so outputs stay zero even with a bias. The
        // functional drain must mirror that, not write bias-only rows.
        let bias = vec![1024i32; 4];
        let run = |backend| {
            let mut cfg = AcceleratorConfig::test_4x4();
            cfg.backend = backend;
            let mut acc = Accelerator::new(cfg);
            let out = acc.matmul(
                &|_, _| 7,
                &|_, _| 7,
                3,
                0,
                4,
                Some(&bias),
                6,
                ActivationKind::Identity,
            );
            (out, acc.array_cycles(), acc.activation_cycles())
        };
        let ticked = run(crate::EngineBackend::Ticked);
        let functional = run(crate::EngineBackend::Functional);
        assert_eq!(functional, ticked);
        assert!(ticked.0.data().iter().all(|&v| v == 0));
    }

    #[test]
    fn untraced_run_matches_traced_outputs() {
        // TraceLevel::Outputs skips the per-iteration snapshot clones:
        // everything except `trace.iterations` must be identical.
        let net = CapsNetConfig::tiny();
        let cfg = AcceleratorConfig::test_4x4();
        let qparams = CapsNetParams::generate(&net, 23).quantize(cfg.numeric);
        let image = Tensor::from_fn(&[1, 12, 12], |i| ((i[1] + 2 * i[2]) % 7) as f32 / 7.0);
        let mut traced = Accelerator::new(cfg);
        let full = traced.run_inference(&net, &qparams, &image);
        let mut light_cfg = cfg;
        light_cfg.trace_level = crate::TraceLevel::Outputs;
        let mut untraced = Accelerator::new(light_cfg);
        let light = untraced.run_inference(&net, &qparams, &image);
        assert_eq!(full.trace.iterations.len(), net.routing_iterations);
        assert!(light.trace.iterations.is_empty());
        assert_eq!(light.trace.output, full.trace.output);
        assert_eq!(light.trace.input_q, full.trace.input_q);
        assert_eq!(light.trace.conv1_out, full.trace.conv1_out);
        assert_eq!(light.trace.pc_out, full.trace.pc_out);
        assert_eq!(light.trace.capsules, full.trace.capsules);
        assert_eq!(light.trace.u_hat, full.trace.u_hat);
        assert_eq!(light.layers, full.layers);
        assert_eq!(light.steps, full.steps);
        assert_eq!(light.traffic, full.traffic);
        assert_eq!(light.memory, full.memory);
    }

    #[test]
    fn accumulator_faults_are_deterministic_and_backend_identical() {
        // The drain op counter advances in the same (n_tile, image,
        // column, row) order on both backends, so one seeded plan must
        // hit the identical ops — same flips, same outputs — ticked or
        // functional, and rerun byte-identically.
        let net = CapsNetConfig::tiny();
        let image = Tensor::from_fn(&[1, 12, 12], |i| ((i[1] + 2 * i[2]) % 7) as f32 / 7.0);
        let mut plan = FaultPlan::seeded(17);
        plan.engine.acc_bitflip_per_drain = 0.05;
        let run = |backend, plan: FaultPlan| {
            let mut cfg = AcceleratorConfig::test_4x4();
            cfg.backend = backend;
            let qparams = CapsNetParams::generate(&net, 23).quantize(cfg.numeric);
            let mut acc = Accelerator::new(cfg);
            acc.set_fault_plan(plan);
            let out = acc.run_inference(&net, &qparams, &image);
            (out.trace, acc.fault_ops(), acc.fault_flips())
        };
        let ticked = run(crate::EngineBackend::Ticked, plan);
        let functional = run(crate::EngineBackend::Functional, plan);
        assert_eq!(ticked, functional);
        assert!(ticked.2 > 0, "5% per drain op must flip something");
        assert_eq!(ticked, run(crate::EngineBackend::Ticked, plan));
        // A plan with no engine faults is byte-invisible and consumes
        // no draws — even when its other layers carry faults.
        let mut noisy_elsewhere = FaultPlan::seeded(17);
        noisy_elsewhere.serve.crash_per_dispatch = 0.5;
        let clean = run(crate::EngineBackend::Ticked, noisy_elsewhere);
        let unarmed = run(crate::EngineBackend::Ticked, FaultPlan::none());
        assert_eq!(clean, unarmed);
        assert_eq!(clean.1, 0);
    }

    #[test]
    fn saturating_clamp_masks_out_of_range_flips() {
        // With masking on, every injected flip that escapes the
        // accumulator's legal ±2^24 range is pulled back to the
        // boundary, so the visible corruption can only shrink.
        let net = CapsNetConfig::tiny();
        let image = Tensor::from_fn(&[1, 12, 12], |i| ((i[1] * 5 + i[2]) % 9) as f32 / 9.0);
        let run = |mask: bool| {
            let cfg = AcceleratorConfig::test_4x4();
            let qparams = CapsNetParams::generate(&net, 31).quantize(cfg.numeric);
            let mut plan = FaultPlan::seeded(41);
            plan.engine.acc_bitflip_per_drain = 1.0;
            plan.engine.mask_with_saturation = mask;
            let mut acc = Accelerator::new(cfg);
            acc.set_fault_plan(plan);
            acc.run_inference(&net, &qparams, &image);
            (acc.fault_flips(), acc.fault_masked())
        };
        let (flips_raw, masked_raw) = run(false);
        let (flips_masked, masked_masked) = run(true);
        assert_eq!(flips_raw, flips_masked, "same plan, same hit schedule");
        assert_eq!(masked_raw, 0, "masking off never clamps");
        assert!(
            masked_masked > 0,
            "rate-1.0 sign-bit flips must escape range and be masked"
        );
    }

    #[test]
    fn telemetry_span_tree_sums_to_run_total_at_every_detail() {
        // The whole point of the explicit recorder clock: at every
        // detail level, on both backends, with ideal or modeled
        // memory, the root "inference" span's length equals the sum of
        // the LayerRun totals — and children exactly partition every
        // parent that has children.
        use capsacc_telemetry::{validate_span_tree, SpanDetail, TelemetryConfig, TRACK_ENGINE};
        let net = CapsNetConfig::tiny();
        let image = Tensor::from_fn(&[1, 12, 12], |i| ((i[1] * 3 + i[2]) % 9) as f32 / 9.0);
        for backend in [
            crate::EngineBackend::Ticked,
            crate::EngineBackend::Functional,
        ] {
            for modeled_mem in [false, true] {
                for detail in [SpanDetail::Layers, SpanDetail::Phases, SpanDetail::Tiles] {
                    let mut cfg = AcceleratorConfig::test_4x4();
                    cfg.backend = backend;
                    if modeled_mem {
                        cfg.memory = capsacc_memory::MemoryConfig::paper();
                    }
                    let qparams = CapsNetParams::generate(&net, 11).quantize(cfg.numeric);
                    let mut acc = Accelerator::new(cfg);
                    acc.enable_telemetry(TelemetryConfig {
                        detail,
                        host_timing: false,
                    });
                    let run = acc.run_inference(&net, &qparams, &image);
                    let rec = acc.take_telemetry();
                    let total = validate_span_tree(&rec, TRACK_ENGINE)
                        .unwrap_or_else(|e| panic!("{backend:?}/{detail:?}: {e}"));
                    let want: u64 = run.layers.iter().map(LayerRun::cycles).sum();
                    assert_eq!(total, want, "{backend:?}/mem={modeled_mem}/{detail:?}");
                }
            }
        }
    }

    #[test]
    fn telemetry_span_trees_are_identical_across_backends() {
        use capsacc_telemetry::{SpanDetail, TelemetryConfig};
        let net = CapsNetConfig::tiny();
        let image = Tensor::from_fn(&[1, 12, 12], |i| ((i[1] + 2 * i[2]) % 7) as f32 / 7.0);
        let spans_for = |backend| {
            let mut cfg = AcceleratorConfig::test_4x4();
            cfg.backend = backend;
            let qparams = CapsNetParams::generate(&net, 7).quantize(cfg.numeric);
            let mut acc = Accelerator::new(cfg);
            acc.enable_telemetry(TelemetryConfig {
                detail: SpanDetail::Tiles,
                host_timing: false,
            });
            acc.run_inference(&net, &qparams, &image);
            acc.take_telemetry().spans().to_vec()
        };
        let ticked = spans_for(crate::EngineBackend::Ticked);
        let functional = spans_for(crate::EngineBackend::Functional);
        assert!(!ticked.is_empty());
        assert_eq!(ticked, functional);
    }

    #[test]
    fn feedback_ablation_increases_data_memory_traffic() {
        let net = CapsNetConfig::tiny();
        let image = Tensor::from_fn(&[1, 12, 12], |i| (i[1] * i[2]) as f32 / 121.0);

        let cfg_on = AcceleratorConfig::test_4x4();
        let qparams = CapsNetParams::generate(&net, 14).quantize(cfg_on.numeric);
        let mut acc_on = Accelerator::new(cfg_on);
        let run_on = acc_on.run_inference(&net, &qparams, &image);

        let mut cfg_off = AcceleratorConfig::test_4x4();
        cfg_off.dataflow.routing_feedback = false;
        let mut acc_off = Accelerator::new(cfg_off);
        let run_off = acc_off.run_inference(&net, &qparams, &image);

        // Same functional result...
        assert_eq!(run_on.trace, run_off.trace);
        // ...but more Data Memory reads without the feedback path.
        let dm_on = run_on.traffic.counter(MemoryKind::DataMemory).read_bytes;
        let dm_off = run_off.traffic.counter(MemoryKind::DataMemory).read_bytes;
        assert!(
            dm_off > dm_on,
            "feedback off should re-read û ({dm_off} vs {dm_on})"
        );
        // 2 extra Sum re-reads + 2 Update re-reads of û (tiny: 32·4·4).
        assert_eq!(dm_off - dm_on, 4 * (32 * 4 * 4));
    }
}
