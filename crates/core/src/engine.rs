//! The cycle-accurate execution engine.
//!
//! [`Accelerator`] owns a register-transfer-level [`SystolicArray`] and
//! drives it through the paper's dataflow mappings tile by tile, cycle by
//! cycle. The functional results are **bit-exact** against the quantized
//! reference model (`capsacc_capsnet::infer_q8_traced`) — the engine even
//! assembles its results into the same [`QuantTrace`] type so integration
//! tests can `assert_eq!` entire inference traces.
//!
//! Cycle accounting: the systolic-array cycles are exact (every PE
//! register is ticked); activation-unit costs use the per-operation
//! formulas of Sec. IV-C; bandwidth ceilings (weight streaming, routing
//! buffer ports) are the analytical model's domain
//! ([`crate::timing`]). The engine executes tiles serially — the
//! pipelined "full throttle" overlap is modelled analytically and
//! cross-checked against the serial engine with pipelining disabled.

use capsacc_capsnet::{
    primary_capsules, CapsNetConfig, QuantPipeline, QuantTrace, QuantizedParams,
    RoutingIterationTrace, RoutingVariant,
};
use capsacc_memory::{MatmulGeometry, MemReport, MemorySubsystem, TileSchedule};
use capsacc_tensor::Tensor;

use crate::accumulator::AccumulatorUnit;
use crate::activation::{ActivationKind, ActivationUnit};
use crate::config::AcceleratorConfig;
use crate::systolic::SystolicArray;
use crate::timing::RoutingStep;
use crate::traffic::{MemoryKind, TrafficReport};

/// Cycle count of one executed layer (Fig. 16 rows).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LayerRun {
    /// Layer name.
    pub name: &'static str,
    /// Systolic-array cycles consumed.
    pub array_cycles: u64,
    /// Activation-unit cycles consumed.
    pub activation_cycles: u64,
    /// Cycles stalled on the memory hierarchy (bank conflicts + exposed
    /// DRAM fills). Always zero under the `IdealMemory` configuration.
    pub memory_stall_cycles: u64,
}

impl LayerRun {
    /// Total cycles of this layer.
    pub fn cycles(&self) -> u64 {
        self.array_cycles + self.activation_cycles + self.memory_stall_cycles
    }
}

/// Result of a full cycle-accurate inference.
#[derive(Clone, PartialEq, Debug)]
pub struct InferenceRun {
    /// The full functional trace, directly comparable (`==`) with the
    /// reference model's trace.
    pub trace: QuantTrace,
    /// Per-layer cycle counts.
    pub layers: Vec<LayerRun>,
    /// Per-routing-step cycle counts (Fig. 17 rows).
    pub steps: Vec<(RoutingStep, u64)>,
    /// Traffic across all memories and buffers during this run.
    pub traffic: TrafficReport,
    /// Memory-hierarchy report for this run (stall decomposition,
    /// on-chip/off-chip split, per-SPM activity).
    pub memory: MemReport,
    /// Accumulator-unit saturation events during this run (zero in
    /// correct operation).
    pub accumulator_saturations: u64,
}

/// The CapsAcc accelerator: systolic array, accumulators, activation
/// units, buffers and the control sequencing of Sec. V.
///
/// # Example
///
/// ```
/// use capsacc_core::{Accelerator, AcceleratorConfig, ActivationKind};
/// use capsacc_tensor::Tensor;
///
/// let mut acc = Accelerator::new(AcceleratorConfig::test_4x4());
/// // A 3×5 by 5×2 quantized matmul, requantized with shift 6.
/// let a = Tensor::from_fn(&[3, 5], |i| (i[0] * 5 + i[1]) as i8);
/// let b = Tensor::from_fn(&[5, 2], |i| (i[0] + i[1]) as i8 * 8);
/// let out = acc.matmul(
///     &|m, k| a[[m, k]],
///     &|k, n| b[[k, n]],
///     3, 5, 2, None, 6, ActivationKind::Identity,
/// );
/// let (exact, _) = capsacc_tensor::qops::matmul_q8(&a, &b, 6);
/// assert_eq!(out, exact);
/// ```
#[derive(Debug)]
pub struct Accelerator {
    pub(crate) cfg: AcceleratorConfig,
    pub(crate) array: SystolicArray,
    pub(crate) activation: ActivationUnit,
    pub(crate) traffic: TrafficReport,
    pub(crate) memory: MemorySubsystem,
    pub(crate) activation_cycles: u64,
    pub(crate) memory_stall_cycles: u64,
    pub(crate) accumulator_saturations: u64,
}

/// Reshapes a `[patches, out_ch]` matmul result into the `[out_ch, oh,
/// ow]` layout the next layer consumes.
pub(crate) fn to_chw(mn: &Tensor<i8>, g: &capsacc_tensor::ConvGeometry) -> Tensor<i8> {
    Tensor::from_fn(&[g.out_ch, g.out_h(), g.out_w()], |i| {
        mn[[i[1] * g.out_w() + i[2], i[0]]]
    })
}

/// Everything the routing-by-agreement phase produces for one image —
/// the trace pieces plus the MAC count of the Sum/Update matmuls.
pub(crate) struct RoutingOutcome {
    pub(crate) iterations: Vec<RoutingIterationTrace>,
    pub(crate) couplings: Tensor<i8>,
    pub(crate) class_caps: Tensor<i8>,
    pub(crate) final_norms: Vec<u8>,
    pub(crate) predicted: usize,
    pub(crate) macs: u64,
}

impl Accelerator {
    /// Builds an accelerator instance.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`AcceleratorConfig::validate`].
    pub fn new(cfg: AcceleratorConfig) -> Self {
        cfg.validate().expect("invalid accelerator configuration");
        Self {
            array: SystolicArray::new(cfg.rows, cfg.cols),
            activation: ActivationUnit::new(QuantPipeline::new(cfg.numeric)),
            traffic: TrafficReport::default(),
            memory: MemorySubsystem::new(cfg.memory),
            activation_cycles: 0,
            memory_stall_cycles: 0,
            accumulator_saturations: 0,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.cfg
    }

    /// Systolic-array cycles executed so far.
    pub fn array_cycles(&self) -> u64 {
        self.array.cycles()
    }

    /// Activation-unit cycles accounted so far.
    pub fn activation_cycles(&self) -> u64 {
        self.activation_cycles
    }

    /// Traffic counters.
    pub fn traffic(&self) -> &TrafficReport {
        &self.traffic
    }

    /// Memory-hierarchy stall cycles accounted so far (zero under
    /// `IdealMemory`).
    pub fn memory_stall_cycles(&self) -> u64 {
        self.memory_stall_cycles
    }

    /// Cumulative memory-hierarchy counters.
    pub fn memory_report(&self) -> MemReport {
        self.memory.report()
    }

    /// Executes a tiled `M × K × N` matmul on the array: weights are
    /// loaded tile-by-tile into the resident registers, data rows stream
    /// against them, per-column accumulator FIFOs fold K-tiles, and the
    /// activation units reduce the finished 25-bit sums to 8 bits.
    ///
    /// `data(m, k)` and `weight(k, n)` supply operands on demand (the
    /// Data Buffer's address-generation view); `bias`, when present, is
    /// indexed by `n` and staged at the product fraction width.
    ///
    /// # Panics
    ///
    /// Panics if a bias slice shorter than `n` is supplied.
    #[allow(clippy::too_many_arguments)]
    pub fn matmul(
        &mut self,
        data: &dyn Fn(usize, usize) -> i8,
        weight: &dyn Fn(usize, usize) -> i8,
        m: usize,
        k: usize,
        n: usize,
        bias: Option<&[i32]>,
        shift: u32,
        kind: ActivationKind,
    ) -> Tensor<i8> {
        let (mut outs, _) = self.matmul_batch(
            1,
            &|_img, mi, ki| data(mi, ki),
            weight,
            m,
            k,
            n,
            bias,
            shift,
            kind,
        );
        outs.pop().expect("batch of one")
    }

    /// Executes the same tiled matmul for a whole batch of data operands
    /// sharing one weight operand — the paper's "reuse weights" scenario
    /// (Fig. 12) generalized across inferences.
    ///
    /// Every weight tile is loaded into the resident registers **once**
    /// and all `batch` images' data rows stream back-to-back against it,
    /// so the Weight Buffer traffic and the per-tile load cycles are paid
    /// once per batch instead of once per image. `data(img, m, k)`
    /// supplies image `img`'s operands.
    ///
    /// Returns one `[m, n]` output tensor per image plus the per-image
    /// accumulator-saturation counts (attribution is exact because each
    /// image keeps its own accumulator FIFOs, mirroring a sequential
    /// run). Per-row arithmetic is identical to [`Accelerator::matmul`],
    /// so outputs are bit-exact against `batch` independent calls.
    ///
    /// Like the single-image engine, this always executes the real
    /// design point — the second weight register exists, so tiles *are*
    /// resident. The `DataflowOptions::weight_reuse` ablation is
    /// modelled analytically only
    /// ([`crate::timing::batch_matmul_cycles`]).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero or a bias slice shorter than `n` is
    /// supplied.
    #[allow(clippy::too_many_arguments)]
    pub fn matmul_batch(
        &mut self,
        batch: usize,
        data: &dyn Fn(usize, usize, usize) -> i8,
        weight: &dyn Fn(usize, usize) -> i8,
        m: usize,
        k: usize,
        n: usize,
        bias: Option<&[i32]>,
        shift: u32,
        kind: ActivationKind,
    ) -> (Vec<Tensor<i8>>, Vec<u64>) {
        self.matmul_batch_inner(batch, data, weight, m, k, n, bias, shift, kind, false)
    }

    /// The shared tiled-matmul implementation. `weights_offchip` marks
    /// the weight operand as DRAM-resident (the network's parameter
    /// layers): its tiles then stream through the memory hierarchy's
    /// double-buffered prefetcher and are charged to the off-chip
    /// counters. On-chip operands (routing's `û`/`v_j`, and every weight
    /// through the public [`Accelerator::matmul_batch`]) touch only the
    /// scratchpads.
    ///
    /// The memory hierarchy never changes functional results and never
    /// touches the ticked array: its stalls accumulate separately in
    /// `memory_stall_cycles`, and are identically zero under
    /// `IdealMemory`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn matmul_batch_inner(
        &mut self,
        batch: usize,
        data: &dyn Fn(usize, usize, usize) -> i8,
        weight: &dyn Fn(usize, usize) -> i8,
        m: usize,
        k: usize,
        n: usize,
        bias: Option<&[i32]>,
        shift: u32,
        kind: ActivationKind,
        weights_offchip: bool,
    ) -> (Vec<Tensor<i8>>, Vec<u64>) {
        assert!(batch > 0, "batch must be non-empty");
        if let Some(b) = bias {
            assert!(b.len() >= n, "bias shorter than output width");
        }
        let (rows, cols) = (self.cfg.rows, self.cfg.cols);
        debug_assert!(
            rows * cols <= self.cfg.weight_buffer_bytes,
            "a {rows}x{cols} weight tile exceeds the {} B Weight Buffer",
            self.cfg.weight_buffer_bytes
        );
        // The whole matmul's tile schedule through the memory hierarchy
        // — the same deterministic replay the closed-form model uses
        // (`timing::matmul_mem_stalls`), so engine and model agree
        // exactly by construction.
        self.memory_stall_cycles += self.memory.matmul(&MatmulGeometry {
            m,
            k,
            n,
            batch,
            rows,
            cols,
            weights_offchip,
            // The ticked engine executes tiles serially; its windows
            // are the serial schedule regardless of the dataflow flag.
            schedule: TileSchedule::Serial,
        });
        if weights_offchip {
            // Each weight crosses the off-chip channel once per batch.
            self.traffic.read(MemoryKind::Dram, (k * n) as u64);
        }
        let mut outs: Vec<Tensor<i8>> = (0..batch).map(|_| Tensor::zeros(&[m, n])).collect();
        let mut saturations = vec![0u64; batch];

        for n0 in (0..n).step_by(cols) {
            let nt = cols.min(n - n0);
            // One accumulator set per image: keeps K-tile folding — and
            // therefore saturation attribution — identical to a
            // sequential per-image run.
            let mut accs: Vec<Vec<AccumulatorUnit>> = (0..batch)
                .map(|_| (0..nt).map(|_| AccumulatorUnit::new(m.max(1))).collect())
                .collect();

            for (kt_idx, k0) in (0..k).step_by(rows).enumerate() {
                let kt = rows.min(k - k0);
                // Weight tile rows (zero-padded to the array width by the
                // array itself), loaded once for the whole batch.
                let tile: Vec<Vec<i8>> = (0..kt)
                    .map(|kr| (0..nt).map(|nc| weight(k0 + kr, n0 + nc)).collect())
                    .collect();
                let tile_refs: Vec<&[i8]> = tile.iter().map(|r| r.as_slice()).collect();
                self.array.load_weights(&tile_refs);
                self.traffic
                    .read(MemoryKind::WeightBuffer, (kt * nt) as u64);

                // Stream every image's data rows for this K-slice
                // against the resident tile, image-major.
                let rows_data: Vec<Vec<i8>> = (0..batch * m)
                    .map(|ri| {
                        let (img, mi) = (ri / m.max(1), ri % m.max(1));
                        (0..kt).map(|ki| data(img, mi, k0 + ki)).collect()
                    })
                    .collect();
                self.traffic
                    .read(MemoryKind::DataBuffer, (batch * m * kt) as u64);
                let psums = self.array.stream(&rows_data);

                for (ri, prow) in psums.iter().enumerate() {
                    for (c, acc) in accs[ri / m.max(1)].iter_mut().enumerate() {
                        if kt_idx == 0 {
                            acc.push_new(prow[c]);
                        } else {
                            acc.fold(prow[c]);
                        }
                    }
                }
            }

            // Drain through the activation units, image by image.
            for (img, image_accs) in accs.iter_mut().enumerate() {
                for (c, acc) in image_accs.iter_mut().enumerate() {
                    let events = acc.saturation_events();
                    saturations[img] += events;
                    self.accumulator_saturations += events;
                    let b = bias.map_or(0i64, |b| b[n0 + c] as i64);
                    for (mi, raw) in acc.drain().into_iter().enumerate() {
                        outs[img][[mi, n0 + c]] = self.activation.reduce(raw + b, shift, kind);
                    }
                }
                self.activation_cycles += ActivationUnit::reduce_cycles(m as u64);
            }
        }
        (outs, saturations)
    }

    /// Squashes every primary capsule of one image through the
    /// activation units, charging the Sec. IV-C cycle cost.
    pub(crate) fn squash_primary(
        &mut self,
        net: &CapsNetConfig,
        pc_out: &Tensor<i8>,
    ) -> Tensor<i8> {
        let raw_caps = primary_capsules(pc_out, net.pc_channels, net.pc_caps_dim);
        let dim = net.pc_caps_dim;
        let mut capsules: Tensor<i8> = Tensor::zeros(raw_caps.shape());
        for (dst, src) in capsules
            .data_mut()
            .chunks_mut(dim)
            .zip(raw_caps.data().chunks(dim))
        {
            let (v, _) = self.activation.squash(src);
            dst.copy_from_slice(&v);
        }
        let caps_count = net.num_primary_caps() as u64;
        let au = self.cfg.activation_units as u64;
        self.activation_cycles +=
            caps_count.div_ceil(au) * ActivationUnit::squash_cycles(dim as u64);
        capsules
    }

    /// Runs the routing-by-agreement phase for one image's predictions,
    /// appending the per-step cycle counts to `steps`. Shared verbatim by
    /// [`Accelerator::run_inference`] and the batched path, which is what
    /// keeps the two bit-identical.
    pub(crate) fn route_class_caps(
        &mut self,
        net: &CapsNetConfig,
        u_hat: &Tensor<i8>,
        steps: &mut Vec<(RoutingStep, u64)>,
    ) -> RoutingOutcome {
        let ncfg = self.cfg.numeric;
        let (in_caps, classes, out_dim) =
            (net.num_primary_caps(), net.num_classes, net.class_caps_dim);
        let u_hat_bytes = (in_caps * classes * out_dim) as u64;
        let mut macs = 0u64;
        let variant = if self.cfg.dataflow.skip_first_softmax {
            RoutingVariant::SkipFirstSoftmax
        } else {
            RoutingVariant::Original
        };
        let mut logits: Tensor<i8> = Tensor::zeros(&[in_caps, classes]);
        let mut couplings: Tensor<i8> = Tensor::zeros(&[in_caps, classes]);
        let mut class_caps: Tensor<i8> = Tensor::zeros(&[classes, out_dim]);
        let mut s_norms = vec![0u8; classes];
        let mut iterations = Vec::with_capacity(net.routing_iterations);
        let coupling_bytes = (in_caps * classes) as u64;

        for r in 0..net.routing_iterations {
            // Softmax (or the direct initialization on iteration 1).
            if r == 0 && variant == RoutingVariant::SkipFirstSoftmax {
                couplings
                    .data_mut()
                    .fill(self.activation.pipeline().uniform_coupling(classes));
                self.traffic
                    .write(MemoryKind::RoutingBuffer, coupling_bytes);
                steps.push((
                    RoutingStep::Softmax(r + 1),
                    coupling_bytes.div_ceil(self.cfg.routing_buf_bw),
                ));
            } else {
                for i in 0..in_caps {
                    let row = &logits.data()[i * classes..(i + 1) * classes];
                    let sm = self.activation.softmax(row);
                    couplings.data_mut()[i * classes..(i + 1) * classes].copy_from_slice(&sm);
                }
                self.traffic.read(MemoryKind::RoutingBuffer, coupling_bytes);
                self.traffic
                    .write(MemoryKind::RoutingBuffer, coupling_bytes);
                let cycles = (in_caps as u64).div_ceil(self.cfg.activation_units as u64)
                    * ActivationUnit::softmax_cycles(classes as u64);
                self.activation_cycles += cycles;
                steps.push((RoutingStep::Softmax(r + 1), cycles));
            }

            // Weighted sums s_j (Fig. 12b on the first iteration, 12d —
            // feedback reuse — afterwards).
            let c0 = self.array.cycles();
            if r == 0 || !self.cfg.dataflow.routing_feedback {
                // û read from the Data Buffer (or re-read from memory
                // when the feedback ablation is off).
                if r > 0 {
                    self.traffic.read(MemoryKind::DataMemory, u_hat_bytes);
                }
                self.traffic.read(MemoryKind::DataBuffer, u_hat_bytes);
            }
            self.traffic.read(MemoryKind::RoutingBuffer, coupling_bytes);
            let mut s_t: Tensor<i8> = Tensor::zeros(&[classes, out_dim]);
            let u_ref = &u_hat;
            let c_ref = &couplings;
            for j in 0..classes {
                let s_row = self.matmul(
                    &|_mi, i| c_ref.data()[i * classes + j],
                    &|i, e| u_ref.data()[(i * classes + j) * out_dim + e],
                    1,
                    in_caps,
                    out_dim,
                    None,
                    ncfg.coupling_mac_shift(),
                    ActivationKind::Identity,
                );
                s_t.data_mut()[j * out_dim..(j + 1) * out_dim].copy_from_slice(s_row.data());
            }
            macs += (classes * out_dim * in_caps) as u64;
            steps.push((RoutingStep::Sum(r + 1), self.array.cycles() - c0));

            // Squash through the activation units.
            for (j, s_norm) in s_norms.iter_mut().enumerate() {
                let (v, norm) = self
                    .activation
                    .squash(&s_t.data()[j * out_dim..(j + 1) * out_dim]);
                class_caps.data_mut()[j * out_dim..(j + 1) * out_dim].copy_from_slice(&v);
                *s_norm = norm;
            }
            let squash_cycles = (classes as u64).div_ceil(self.cfg.activation_units as u64)
                * ActivationUnit::squash_cycles(out_dim as u64);
            self.activation_cycles += squash_cycles;
            self.traffic
                .write(MemoryKind::RoutingBuffer, (classes * out_dim) as u64);
            steps.push((RoutingStep::Squash(r + 1), squash_cycles));

            // Logit update (Fig. 12c: û reused via the feedback path).
            let logits_after_update = if r + 1 < net.routing_iterations {
                let c0 = self.array.cycles();
                if !self.cfg.dataflow.routing_feedback {
                    self.traffic.read(MemoryKind::DataMemory, u_hat_bytes);
                }
                self.traffic
                    .read(MemoryKind::RoutingBuffer, (classes * out_dim) as u64);
                let v_ref = &class_caps;
                for j in 0..classes {
                    let deltas = self.matmul(
                        &|i, e| u_ref.data()[(i * classes + j) * out_dim + e],
                        &|e, _| v_ref.data()[j * out_dim + e],
                        in_caps,
                        out_dim,
                        1,
                        None,
                        ncfg.update_shift(),
                        ActivationKind::Identity,
                    );
                    for i in 0..in_caps {
                        let cur = logits.data()[i * classes + j];
                        logits.data_mut()[i * classes + j] = cur.saturating_add(deltas.data()[i]);
                    }
                }
                macs += (classes * in_caps * out_dim) as u64;
                self.traffic.read(MemoryKind::RoutingBuffer, coupling_bytes);
                self.traffic
                    .write(MemoryKind::RoutingBuffer, coupling_bytes);
                steps.push((RoutingStep::Update(r + 1), self.array.cycles() - c0));
                Some(logits.clone())
            } else {
                None
            };

            iterations.push(RoutingIterationTrace {
                couplings: couplings.clone(),
                s: s_t,
                v: class_caps.clone(),
                norms: s_norms.clone(),
                logits_after_update,
            });
        }

        // Final classification: norm unit over the squashed capsules.
        let final_norms: Vec<u8> = (0..classes)
            .map(|j| {
                self.activation
                    .norm(&class_caps.data()[j * out_dim..(j + 1) * out_dim])
            })
            .collect();
        self.activation_cycles += (classes as u64).div_ceil(self.cfg.activation_units as u64)
            * ActivationUnit::norm_cycles(out_dim as u64);
        let predicted = final_norms
            .iter()
            .enumerate()
            .max_by_key(|&(i, &nn)| (nn, std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .expect("at least one class");

        RoutingOutcome {
            iterations,
            couplings,
            class_caps,
            final_norms,
            predicted,
            macs,
        }
    }

    /// Runs a complete CapsuleNet inference cycle-accurately.
    ///
    /// The returned [`InferenceRun::trace`] is bit-exact against
    /// [`capsacc_capsnet::infer_q8_traced`] with the same parameters,
    /// pipeline and routing variant (derived from
    /// `dataflow.skip_first_softmax`).
    ///
    /// Implemented as [`Accelerator::run_batch`] with a batch of one —
    /// there is a single layer-orchestration code path, so the
    /// sequential and batched engines cannot drift apart.
    ///
    /// # Panics
    ///
    /// Panics if `image` is not `[1, input_side, input_side]` (the
    /// batched entry point [`Accelerator::run_batch`] reports the same
    /// condition as a [`crate::BatchError`] instead).
    pub fn run_inference(
        &mut self,
        net: &CapsNetConfig,
        qparams: &QuantizedParams,
        image: &Tensor<f32>,
    ) -> InferenceRun {
        let mut run = self
            .run_batch(net, qparams, std::slice::from_ref(image))
            .unwrap_or_else(|e| panic!("run_inference: {e}"));
        InferenceRun {
            trace: run.traces.pop().expect("batch of one"),
            layers: run.layers,
            steps: run.steps,
            traffic: run.traffic,
            memory: run.memory,
            accumulator_saturations: run.accumulator_saturations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;
    use crate::timing::{batch_matmul_cycles, matmul_cycles, MatmulShape};
    use capsacc_capsnet::{infer_q8_traced, CapsNetParams};
    use capsacc_tensor::qops;
    use proptest::prelude::*;

    fn test_acc() -> Accelerator {
        Accelerator::new(AcceleratorConfig::test_4x4())
    }

    #[test]
    fn matmul_bit_exact_vs_reference() {
        let mut acc = test_acc();
        let a = Tensor::from_fn(&[5, 9], |i| ((i[0] * 9 + i[1]) as i8).wrapping_mul(7));
        let b = Tensor::from_fn(&[9, 6], |i| ((i[0] * 6 + i[1]) as i8).wrapping_sub(50));
        let out = acc.matmul(
            &|m, k| a[[m, k]],
            &|k, n| b[[k, n]],
            5,
            9,
            6,
            None,
            6,
            ActivationKind::Identity,
        );
        let (exact, stats) = qops::matmul_q8(&a, &b, 6);
        assert_eq!(stats.saturations, 0);
        assert_eq!(out, exact);
    }

    #[test]
    fn matmul_with_bias_and_relu() {
        let mut acc = test_acc();
        let a = Tensor::from_vec(&[1, 2], vec![32i8, 32]).unwrap();
        let b = Tensor::from_vec(&[2, 2], vec![-64i8, 64, -64, 64]).unwrap();
        let bias = vec![1024i32, -4096];
        let out = acc.matmul(
            &|m, k| a[[m, k]],
            &|k, n| b[[k, n]],
            1,
            2,
            2,
            Some(&bias),
            6,
            ActivationKind::Relu,
        );
        // col 0: 2·(1.0·-1.0) + 0.5 = -1.5 → ReLU → 0.
        // col 1: 2·(1.0·1.0) − 2.0 = 0 → 0.
        assert_eq!(out.data(), &[0, 0]);
        let out = acc.matmul(
            &|m, k| a[[m, k]],
            &|k, n| b[[k, n]],
            1,
            2,
            2,
            Some(&bias),
            6,
            ActivationKind::Identity,
        );
        assert_eq!(out.data(), &[-48, 0]);
    }

    #[test]
    fn matmul_cycles_match_serial_formula() {
        let mut cfg = AcceleratorConfig::test_4x4();
        cfg.dataflow.pipelined_tiles = false;
        for (m, k, n) in [(1, 4, 4), (3, 9, 6), (7, 2, 10), (5, 17, 3)] {
            let mut acc = Accelerator::new(cfg);
            let before = acc.array_cycles();
            acc.matmul(
                &|_, _| 1,
                &|_, _| 1,
                m,
                k,
                n,
                None,
                6,
                ActivationKind::Identity,
            );
            let got = acc.array_cycles() - before;
            let expect = matmul_cycles(
                MatmulShape {
                    m: m as u64,
                    k: k as u64,
                    n: n as u64,
                },
                &cfg,
            );
            assert_eq!(got, expect, "cycles for ({m},{k},{n})");
        }
    }

    #[test]
    fn weight_traffic_counts_each_weight_once() {
        let mut acc = test_acc();
        acc.matmul(
            &|_, _| 1,
            &|_, _| 1,
            5,
            8,
            8,
            None,
            6,
            ActivationKind::Identity,
        );
        assert_eq!(
            acc.traffic().counter(MemoryKind::WeightBuffer).read_bytes,
            64
        );
        // Data re-streamed once per (K,N) tile pair: 2 N-tiles × 2 K-tiles
        // × 5 rows × 4 elements.
        assert_eq!(
            acc.traffic().counter(MemoryKind::DataBuffer).read_bytes,
            2 * 2 * 5 * 4
        );
    }

    #[test]
    fn full_inference_trace_is_bit_exact_vs_reference() {
        let net = CapsNetConfig::tiny();
        let cfg = AcceleratorConfig::test_4x4();
        let params = CapsNetParams::generate(&net, 11);
        let qparams = params.quantize(cfg.numeric);
        let pipeline = QuantPipeline::new(cfg.numeric);
        let image = Tensor::from_fn(&[1, 12, 12], |i| {
            (((i[1] * 5 + i[2] * 3) % 13) as f32 / 13.0).min(1.0)
        });

        let reference = infer_q8_traced(
            &net,
            &qparams,
            &pipeline,
            &image,
            RoutingVariant::SkipFirstSoftmax,
        );
        let mut acc = Accelerator::new(cfg);
        let run = acc.run_inference(&net, &qparams, &image);

        assert_eq!(run.accumulator_saturations, 0);
        assert_eq!(run.trace.input_q, reference.input_q);
        assert_eq!(run.trace.conv1_out, reference.conv1_out);
        assert_eq!(run.trace.pc_out, reference.pc_out);
        assert_eq!(run.trace.capsules, reference.capsules);
        assert_eq!(run.trace.u_hat, reference.u_hat);
        assert_eq!(run.trace.iterations, reference.iterations);
        assert_eq!(run.trace.output.class_norms, reference.output.class_norms);
        assert_eq!(run.trace.output.predicted, reference.output.predicted);
        assert_eq!(run.trace.output.class_caps, reference.output.class_caps);
        assert_eq!(run.trace.output.couplings, reference.output.couplings);
        assert_eq!(run.trace.output.stats.macs, reference.output.stats.macs);
    }

    #[test]
    fn original_variant_also_bit_exact() {
        let net = CapsNetConfig::tiny();
        let mut cfg = AcceleratorConfig::test_4x4();
        cfg.dataflow.skip_first_softmax = false;
        let qparams = CapsNetParams::generate(&net, 12).quantize(cfg.numeric);
        let pipeline = QuantPipeline::new(cfg.numeric);
        let image = Tensor::from_fn(&[1, 12, 12], |i| (i[1] as f32 - i[2] as f32).abs() / 12.0);

        let reference =
            infer_q8_traced(&net, &qparams, &pipeline, &image, RoutingVariant::Original);
        let mut acc = Accelerator::new(cfg);
        let run = acc.run_inference(&net, &qparams, &image);
        assert_eq!(run.trace, reference);
    }

    #[test]
    fn step_sequence_matches_fig17() {
        let net = CapsNetConfig::tiny();
        let cfg = AcceleratorConfig::test_4x4();
        let qparams = CapsNetParams::generate(&net, 13).quantize(cfg.numeric);
        let image = Tensor::from_fn(&[1, 12, 12], |i| (i[1] + i[2]) as f32 / 24.0);
        let mut acc = Accelerator::new(cfg);
        let run = acc.run_inference(&net, &qparams, &image);
        let names: Vec<String> = run.steps.iter().map(|(s, _)| s.to_string()).collect();
        assert_eq!(
            names,
            vec![
                "Load", "FC", "Softmax1", "Sum1", "Squash1", "Update1", "Softmax2", "Sum2",
                "Squash2", "Update2", "Softmax3", "Sum3", "Squash3",
            ]
        );
        assert_eq!(run.layers.len(), 3);
        assert!(run.layers.iter().all(|l| l.cycles() > 0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Extreme-but-valid shapes after the checked-cast audit
        /// (deep-K reductions hundreds of tiles long, wider than any
        /// layer in the paper's network): the closed-form model and the
        /// ticked engine must still agree cycle-exactly on serial
        /// tiles — the conversion to checked/`try_from` arithmetic
        /// changed no in-range value.
        #[test]
        fn extreme_shapes_model_and_engine_agree(
            m in 1usize..4,
            k in 1024usize..3072,
            n in 1usize..10,
            batch in 1usize..3,
        ) {
            let mut cfg = AcceleratorConfig::test_4x4();
            cfg.dataflow.pipelined_tiles = false;
            let mut acc = Accelerator::new(cfg);
            let before = acc.array_cycles();
            acc.matmul_batch(
                batch,
                &|img, mi, ki| ((img + mi + ki) % 5) as i8,
                &|ki, ni| ((ki ^ ni) % 7) as i8,
                m,
                k,
                n,
                None,
                6,
                ActivationKind::Identity,
            );
            let got = acc.array_cycles() - before;
            let expect = batch_matmul_cycles(
                MatmulShape { m: m as u64, k: k as u64, n: n as u64 },
                batch as u64,
                &cfg,
            );
            prop_assert_eq!(got, expect, "engine/model divergence at m={} k={} n={} b={}", m, k, n, batch);
        }
    }

    #[test]
    fn feedback_ablation_increases_data_memory_traffic() {
        let net = CapsNetConfig::tiny();
        let image = Tensor::from_fn(&[1, 12, 12], |i| (i[1] * i[2]) as f32 / 121.0);

        let cfg_on = AcceleratorConfig::test_4x4();
        let qparams = CapsNetParams::generate(&net, 14).quantize(cfg_on.numeric);
        let mut acc_on = Accelerator::new(cfg_on);
        let run_on = acc_on.run_inference(&net, &qparams, &image);

        let mut cfg_off = AcceleratorConfig::test_4x4();
        cfg_off.dataflow.routing_feedback = false;
        let mut acc_off = Accelerator::new(cfg_off);
        let run_off = acc_off.run_inference(&net, &qparams, &image);

        // Same functional result...
        assert_eq!(run_on.trace, run_off.trace);
        // ...but more Data Memory reads without the feedback path.
        let dm_on = run_on.traffic.counter(MemoryKind::DataMemory).read_bytes;
        let dm_off = run_off.traffic.counter(MemoryKind::DataMemory).read_bytes;
        assert!(
            dm_off > dm_on,
            "feedback off should re-read û ({dm_off} vs {dm_on})"
        );
        // 2 extra Sum re-reads + 2 Update re-reads of û (tiny: 32·4·4).
        assert_eq!(dm_off - dm_on, 4 * (32 * 4 * 4));
    }
}
