//! The processing element (Fig. 11b of the paper).

/// Which weight register feeds the multiplier.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum WeightSelect {
    /// The streaming register `Weight1` (fully-connected style: weights
    /// flow down every cycle).
    #[default]
    Stream,
    /// The resident register `Weight2` (convolutional reuse: "the same
    /// weight of the filter must be convolved across different data",
    /// Sec. IV-A).
    Held,
}

/// Per-cycle control signals for a PE.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct PeControl {
    /// Multiplier weight source.
    pub select: WeightSelect,
    /// Latch `Weight1` into `Weight2` at the end of this cycle (asserted
    /// once per tile when establishing a resident filter).
    pub latch_weight2: bool,
}

/// Combinational inputs of a PE for one cycle.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct PeInput {
    /// Data arriving from the left neighbour (or the array's west edge).
    pub data: i8,
    /// Weight arriving from above (or the array's north edge).
    pub weight: i8,
    /// Partial sum arriving from above (zero at the first row — the
    /// "Null" inputs of Fig. 10).
    pub psum: i64,
}

/// Registered outputs of a PE, visible to its neighbours next cycle.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct PeOutput {
    /// Data forwarded to the right neighbour.
    pub data: i8,
    /// Weight forwarded to the neighbour below.
    pub weight: i8,
    /// Partial sum forwarded to the neighbour below (25-bit saturated).
    pub psum: i64,
}

/// One processing element: an 8×8-bit multiplier, a 25-bit adder, and
/// four registers (Data, Weight1, Weight2, Partial-sum), exactly as in
/// Fig. 11b.
///
/// # Example
///
/// ```
/// use capsacc_core::{Pe, PeControl, PeInput};
/// let mut pe = Pe::new();
/// // Cycle 1: the weight 5 flows in and lands in Weight1.
/// let out = pe.tick(PeInput { data: 0, weight: 5, psum: 0 }, PeControl::default());
/// assert_eq!(out.psum, 0); // outputs are registered
/// // Cycle 2: data 3 multiplies the stored weight and accumulates.
/// pe.tick(PeInput { data: 3, weight: 0, psum: 100 }, PeControl::default());
/// // Cycle 3: the MAC result is visible downstream.
/// let out = pe.tick(PeInput::default(), PeControl::default());
/// assert_eq!(out.psum, 100 + 3 * 5);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Pe {
    data_reg: i8,
    weight1_reg: i8,
    weight2_reg: i8,
    psum_reg: i64,
}

impl Pe {
    /// Width of the partial-sum datapath (25 bits, Sec. IV-A).
    pub const PSUM_BITS: u32 = 25;

    /// The PE's MAC datapath as a pure function: one 8×8-bit multiply
    /// folded into an incoming partial sum through the 25-bit saturating
    /// adder. This is the *single* definition of the per-step arithmetic
    /// — [`Pe::tick`] calls it for the ticked array, and the engine's
    /// `Functional` backend applies it in the same fixed north→south
    /// order, which is what makes the two backends bit-identical by
    /// construction (saturation is order-sensitive, so sharing the step
    /// is not a convenience but a correctness requirement).
    #[inline]
    #[must_use]
    pub fn mac_step(psum: i64, data: i8, weight: i8) -> i64 {
        capsacc_fixed::saturate_to_bits(psum + i64::from(data) * i64::from(weight), Self::PSUM_BITS)
    }

    /// Creates a PE with all registers cleared.
    pub const fn new() -> Self {
        Self {
            data_reg: 0,
            weight1_reg: 0,
            weight2_reg: 0,
            psum_reg: 0,
        }
    }

    /// Advances one clock edge: computes the MAC from this cycle's
    /// inputs, commits all four registers, and returns the outputs that
    /// become visible to neighbours *next* cycle (i.e. the register
    /// values from *before* this edge — standard synchronous semantics).
    pub fn tick(&mut self, input: PeInput, ctrl: PeControl) -> PeOutput {
        let out = PeOutput {
            data: self.data_reg,
            weight: self.weight1_reg,
            psum: self.psum_reg,
        };
        let w = match ctrl.select {
            WeightSelect::Stream => self.weight1_reg,
            WeightSelect::Held => self.weight2_reg,
        };
        self.psum_reg = Self::mac_step(input.psum, input.data, w);
        self.data_reg = input.data;
        if ctrl.latch_weight2 {
            self.weight2_reg = self.weight1_reg;
        }
        self.weight1_reg = input.weight;
        out
    }

    /// Current resident (`Weight2`) register value.
    pub fn held_weight(&self) -> i8 {
        self.weight2_reg
    }

    /// Current streaming (`Weight1`) register value.
    pub fn streaming_weight(&self) -> i8 {
        self.weight1_reg
    }

    /// Current partial-sum register value.
    pub fn psum(&self) -> i64 {
        self.psum_reg
    }

    /// Clears all registers (between tiles when not pipelining).
    pub fn reset(&mut self) {
        *self = Self::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn outputs_are_registered() {
        let mut pe = Pe::new();
        let o1 = pe.tick(
            PeInput {
                data: 7,
                weight: 9,
                psum: 0,
            },
            PeControl::default(),
        );
        assert_eq!(o1, PeOutput::default());
        let o2 = pe.tick(PeInput::default(), PeControl::default());
        // Data and weight forwarded; MAC used weight1 (which was 0 when
        // the multiply happened — the weight arrives *this* edge).
        assert_eq!(o2.data, 7);
        assert_eq!(o2.weight, 9);
        assert_eq!(o2.psum, 0); // 7 * weight1(=0) + 0
    }

    #[test]
    fn stream_mac_uses_previously_loaded_weight() {
        let mut pe = Pe::new();
        // Cycle 1: weight 5 enters (stored into weight1 at the edge).
        pe.tick(
            PeInput {
                data: 0,
                weight: 5,
                psum: 0,
            },
            PeControl::default(),
        );
        // Cycle 2: data 3 multiplies the stored weight 5.
        pe.tick(
            PeInput {
                data: 3,
                weight: 0,
                psum: 10,
            },
            PeControl::default(),
        );
        // Cycle 3: result visible.
        let o = pe.tick(PeInput::default(), PeControl::default());
        assert_eq!(o.psum, 25);
    }

    #[test]
    fn held_weight_survives_streaming() {
        let mut pe = Pe::new();
        // Load 11 into weight1, then latch it into weight2.
        pe.tick(
            PeInput {
                data: 0,
                weight: 11,
                psum: 0,
            },
            PeControl::default(),
        );
        pe.tick(
            PeInput {
                data: 0,
                weight: 99, // new stream value, must not disturb weight2
                psum: 0,
            },
            PeControl {
                select: WeightSelect::Stream,
                latch_weight2: true,
            },
        );
        assert_eq!(pe.held_weight(), 11);
        assert_eq!(pe.streaming_weight(), 99);
        // MAC against the held weight while different weights stream by.
        pe.tick(
            PeInput {
                data: 4,
                weight: 50,
                psum: 0,
            },
            PeControl {
                select: WeightSelect::Held,
                latch_weight2: false,
            },
        );
        let o = pe.tick(PeInput::default(), PeControl::default());
        assert_eq!(o.psum, 44);
        assert_eq!(pe.held_weight(), 11);
    }

    #[test]
    fn psum_saturates_at_25_bits() {
        let mut pe = Pe::new();
        let max25 = (1i64 << 24) - 1;
        pe.tick(
            PeInput {
                data: 127,
                weight: 0,
                psum: max25,
            },
            PeControl::default(),
        );
        // data * weight1(=0) + max25 = max25: no saturation yet.
        assert_eq!(pe.psum(), max25);
        // Now push it over: 127·127 + max25 saturates.
        let mut pe = Pe::new();
        pe.tick(
            PeInput {
                data: 0,
                weight: 127,
                psum: 0,
            },
            PeControl::default(),
        );
        pe.tick(
            PeInput {
                data: 127,
                weight: 0,
                psum: max25,
            },
            PeControl::default(),
        );
        assert_eq!(pe.psum(), max25);
    }

    #[test]
    fn reset_clears_everything() {
        let mut pe = Pe::new();
        pe.tick(
            PeInput {
                data: 1,
                weight: 2,
                psum: 3,
            },
            PeControl {
                select: WeightSelect::Stream,
                latch_weight2: true,
            },
        );
        pe.reset();
        assert_eq!(pe, Pe::new());
    }

    proptest! {
        #[test]
        fn mac_step_is_the_saturating_fold(
            d in any::<i8>(), w in any::<i8>(), p in -(1i64<<24)..(1i64<<24)
        ) {
            // The shared datapath step equals the library clamp — and is
            // what `tick` commits into the psum register.
            let want = capsacc_fixed::saturate_to_bits(
                p + d as i64 * w as i64, Pe::PSUM_BITS);
            prop_assert_eq!(Pe::mac_step(p, d, w), want);
            let mut pe = Pe::new();
            pe.tick(PeInput { data: 0, weight: w, psum: 0 }, PeControl::default());
            pe.tick(PeInput { data: d, weight: 0, psum: p }, PeControl::default());
            prop_assert_eq!(pe.psum(), Pe::mac_step(p, d, w));
        }

        #[test]
        fn mac_arithmetic_exact_when_unsaturated(
            d in any::<i8>(), w in any::<i8>(), p in -(1i64<<23)..(1i64<<23)
        ) {
            let mut pe = Pe::new();
            // Preload weight1 = w.
            pe.tick(PeInput { data: 0, weight: w, psum: 0 }, PeControl::default());
            pe.tick(PeInput { data: d, weight: 0, psum: p }, PeControl::default());
            let exact = (p + d as i64 * w as i64)
                .clamp(-(1i64 << 24), (1i64 << 24) - 1);
            prop_assert_eq!(pe.psum(), exact);
        }
    }
}
