//! Closed-form cycle model of the CapsAcc dataflow.
//!
//! Every formula here mirrors the control sequences the cycle-accurate
//! [`crate::engine`] executes; with tile pipelining disabled the two
//! agree *exactly* (asserted by the engine's tests). With pipelining
//! enabled (the paper's "full throttle" design point) the model hides
//! weight reloads behind data streaming, which the serial engine does
//! not simulate — the formulas document the difference.
//!
//! Cycle anatomy of one weight-stationary tile on an `R × C` array
//! (see [`SystolicArray`](crate::SystolicArray)):
//!
//! - weight load: `R` edges (skewed rows) + 1 latch edge;
//! - streaming `M` data rows: `M + R + C` edges including drain.
//!
//! Layers whose weight footprint exceeds the Weight Buffer stream
//! weights from the on-chip Weight Memory at `weight_mem_bw` bytes per
//! cycle; the layer time is the max of compute and that stream (this is
//! what makes PrimaryCaps — 5.3 MB of weights for only 36 output pixels —
//! the one layer where the GPU keeps an edge, Fig. 16).

use capsacc_capsnet::CapsNetConfig;
use capsacc_memory::{MatmulGeometry, MemReport, MemorySubsystem, TileSchedule};
use capsacc_tensor::ConvGeometry;

use crate::activation::ActivationUnit;
use crate::config::AcceleratorConfig;

/// Dimensions of a dense matmul mapped onto the array.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct MatmulShape {
    /// Streamed data rows.
    pub m: u64,
    /// Reduction length.
    pub k: u64,
    /// Output columns.
    pub n: u64,
}

fn ceil_div(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

// The audited widen/narrow helpers moved to `capsacc-tensor` so every
// crate shares one definition (and `capsacc-lint`'s cast audit has a
// single sanctioned route); this module keeps using them unqualified.
use capsacc_tensor::{u64_from, usize_from};

/// Product of shape factors with overflow detection: an adversarially
/// large (but type-valid) network must fail loudly — release builds
/// would otherwise wrap `u64` multiplications silently and report
/// garbage cycle counts. (The shared fold lives in `capsacc-tensor`
/// next to the geometry products it also guards.)
use capsacc_tensor::checked_product_u64 as checked_product;

/// Whether consecutive tiles can actually pipeline: the dataflow switch
/// must be on **and** the Weight Buffer must hold two tiles (the double
/// buffer the overlap physically needs). Undersized buffers silently
/// degrade to the serial schedule instead of assuming free overlap —
/// tile-load cycles are *not* independent of buffer capacity.
fn tiles_pipeline(cfg: &AcceleratorConfig) -> bool {
    cfg.dataflow.pipelined_tiles && 2 * cfg.rows * cfg.cols <= cfg.weight_buffer_bytes
}

/// Asserts (in debug builds) that a single weight tile fits its buffer —
/// no schedule can hide a tile that cannot be resident at all.
fn debug_assert_tile_fits(cfg: &AcceleratorConfig) {
    debug_assert!(
        cfg.rows * cfg.cols <= cfg.weight_buffer_bytes,
        "a {}x{} weight tile exceeds the {} B Weight Buffer",
        cfg.rows,
        cfg.cols,
        cfg.weight_buffer_bytes
    );
}

/// Cycles to execute one `M × K × N` matmul with the configured dataflow.
///
/// With `pipelined_tiles`, consecutive K-tiles of one N-tile stream
/// back-to-back and each reload (R + 1 edges) hides behind the previous
/// tile's `M` data rows; the pipeline fills and drains once per N-tile.
/// Without it, every tile pays its own load and drain — exactly the
/// sequence the cycle-accurate engine executes.
///
/// With `weight_reuse` disabled (ablation), the resident weight register
/// is not used and the tile weights are re-loaded before *every* data
/// row.
///
/// Buffer capacity is threaded through the schedule: pipelining needs a
/// double-buffered tile in the Weight Buffer, so when `2·R·C` bytes do
/// not fit the formula falls back to the serial schedule (and a debug
/// assertion rejects configurations whose single tile cannot fit at
/// all).
pub fn matmul_cycles(shape: MatmulShape, cfg: &AcceleratorConfig) -> u64 {
    debug_assert_tile_fits(cfg);
    let (r, c) = (u64_from(cfg.rows), u64_from(cfg.cols));
    let kk = ceil_div(shape.k, r).max(1);
    let nn = ceil_div(shape.n, c).max(1);
    let m = shape.m;
    let load = r + 1;
    if !cfg.dataflow.weight_reuse {
        // Reload the tile before every data row: the weight2 path is
        // disabled, so each row pays a full load.
        let per_tile = checked_product("matmul reload schedule", &[m, load]) + (m + r + c);
        return checked_product("matmul cycle count", &[nn, kk, per_tile]);
    }
    if tiles_pipeline(cfg) {
        // Initial load, then back-to-back K-tiles; each subsequent tile
        // is gated by max(data streaming, weight reload); one drain.
        let steady = checked_product("matmul pipelined tiles", &[kk - 1, m.max(load)]);
        checked_product("matmul cycle count", &[nn, load + m + steady + (r + c)])
    } else {
        checked_product("matmul cycle count", &[nn, kk, load + m + r + c])
    }
}

/// Weight bytes a matmul reads from the weight store (each weight once
/// per N-tile visit with reuse; once per data row without).
pub fn matmul_weight_bytes(shape: MatmulShape, cfg: &AcceleratorConfig) -> u64 {
    let per_visit = checked_product("matmul weight footprint", &[shape.k, shape.n]);
    if cfg.dataflow.weight_reuse {
        per_visit
    } else {
        checked_product("matmul weight reloads", &[per_visit, shape.m.max(1)])
    }
}

/// Cycles to execute the same matmul for `batch` data operands sharing
/// one weight operand, with the tiles held resident across the batch
/// (the engine's [`crate::Accelerator::matmul_batch`] schedule).
///
/// With weight reuse, all `batch · M` data rows stream against each
/// resident tile, so the batched run is exactly a single matmul with
/// `M' = batch · M` — every tile load (and, when pipelining, every
/// fill/drain) is paid once per batch instead of once per image. With
/// the reuse ablation there is no residency to exploit and the batch
/// degenerates to `batch` independent runs — an analytical-only
/// scenario: the engine always simulates the real design point with the
/// second weight register present, so engine↔model agreement holds for
/// reuse-enabled configurations (the ones the engine can execute).
pub fn batch_matmul_cycles(shape: MatmulShape, batch: u64, cfg: &AcceleratorConfig) -> u64 {
    if !cfg.dataflow.weight_reuse {
        return checked_product("batched matmul cycles", &[batch, matmul_cycles(shape, cfg)]);
    }
    matmul_cycles(
        MatmulShape {
            m: checked_product("batched data rows", &[shape.m, batch]),
            ..shape
        },
        cfg,
    )
}

/// Weight bytes a batched matmul reads from the weight store: once per
/// *batch* with reuse, once per data row of every image without.
pub fn batch_matmul_weight_bytes(shape: MatmulShape, batch: u64, cfg: &AcceleratorConfig) -> u64 {
    if cfg.dataflow.weight_reuse {
        matmul_weight_bytes(shape, cfg)
    } else {
        checked_product(
            "batched weight reloads",
            &[batch, matmul_weight_bytes(shape, cfg)],
        )
    }
}

/// Timing of one layer (or layer-level phase).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LayerTiming {
    /// Layer name as printed in Figs. 8/16.
    pub name: &'static str,
    /// Systolic-array compute cycles.
    pub compute_cycles: u64,
    /// Weight-streaming cycles (on-chip Weight Memory → array).
    pub weight_stream_cycles: u64,
    /// Activation-unit cycles appended after the array.
    pub activation_cycles: u64,
    /// Total cycles: `max(compute, weight stream) + activation`.
    pub cycles: u64,
    /// MAC operations.
    pub macs: u64,
    /// Weight bytes read.
    pub weight_bytes: u64,
}

impl LayerTiming {
    fn new(
        name: &'static str,
        compute: u64,
        weight_bytes: u64,
        activation: u64,
        macs: u64,
        cfg: &AcceleratorConfig,
    ) -> Self {
        let weight_stream_cycles = ceil_div(weight_bytes, cfg.weight_mem_bw);
        Self {
            name,
            compute_cycles: compute,
            weight_stream_cycles,
            activation_cycles: activation,
            cycles: compute.max(weight_stream_cycles) + activation,
            macs,
            weight_bytes,
        }
    }

    /// Wall-clock time in microseconds at the configured clock.
    pub fn time_us(&self, cfg: &AcceleratorConfig) -> f64 {
        cfg.cycles_to_us(self.cycles)
    }
}

/// Timing of a convolutional layer (Conv1 / PrimaryCaps conv phase) via
/// the Fig. 13/14 mapping: im2col rows stream against weight-stationary
/// filter tiles.
pub fn conv_layer(
    name: &'static str,
    g: &ConvGeometry,
    relu: bool,
    cfg: &AcceleratorConfig,
) -> LayerTiming {
    let shape = MatmulShape {
        m: u64_from(g.patches()),
        k: u64_from(g.patch_len()),
        n: u64_from(g.out_ch),
    };
    let compute = matmul_cycles(shape, cfg);
    let weight_bytes = matmul_weight_bytes(shape, cfg) + u64_from(g.out_ch); // + biases
    let act = if relu {
        // ReLU is pipelined behind the output stream: latency only.
        ActivationUnit::reduce_cycles(0)
    } else {
        0
    };
    LayerTiming::new(name, compute, weight_bytes, act, g.macs(), cfg)
}

/// Timing of the PrimaryCaps layer: its convolution plus the per-capsule
/// squash through the activation units.
pub fn primary_caps_layer(net: &CapsNetConfig, cfg: &AcceleratorConfig) -> LayerTiming {
    let g = net.primary_caps_geometry();
    let conv = conv_layer("PrimaryCaps", &g, false, cfg);
    let caps = u64_from(net.num_primary_caps());
    let au = u64_from(cfg.activation_units);
    let squash = ceil_div(caps, au) * ActivationUnit::squash_cycles(u64_from(net.pc_caps_dim));
    LayerTiming::new(
        "PrimaryCaps",
        conv.compute_cycles,
        conv.weight_bytes,
        squash,
        conv.macs,
        cfg,
    )
}

/// The steps of the ClassCaps phase, named as on the x-axis of
/// Figs. 9/17. Iterations are 1-based as in the paper.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum RoutingStep {
    /// Staging the prediction working set into the Data Buffer.
    Load,
    /// The ClassCaps matrix multiplications producing `û_{j|i}`.
    Fc,
    /// Softmax over the routing logits (iteration k).
    Softmax(usize),
    /// Weighted sums `s_j` (iteration k).
    Sum(usize),
    /// Squash of the class capsules (iteration k).
    Squash(usize),
    /// Logit update `b_ij += û·v` (iteration k).
    Update(usize),
}

impl std::fmt::Display for RoutingStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoutingStep::Load => write!(f, "Load"),
            RoutingStep::Fc => write!(f, "FC"),
            RoutingStep::Softmax(i) => write!(f, "Softmax{i}"),
            RoutingStep::Sum(i) => write!(f, "Sum{i}"),
            RoutingStep::Squash(i) => write!(f, "Squash{i}"),
            RoutingStep::Update(i) => write!(f, "Update{i}"),
        }
    }
}

/// Timing of one routing step.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct RoutingStepTiming {
    /// Which step.
    pub step: RoutingStep,
    /// Total cycles (compute/bandwidth max already applied).
    pub cycles: u64,
    /// Data Memory bytes moved (non-zero only when the feedback reuse is
    /// disabled or during the initial Load).
    pub data_mem_bytes: u64,
}

impl RoutingStepTiming {
    /// Wall-clock time in microseconds.
    pub fn time_us(&self, cfg: &AcceleratorConfig) -> f64 {
        cfg.cycles_to_us(self.cycles)
    }
}

/// Timing of the complete ClassCaps phase (Load + FC + routing
/// iterations), step by step.
///
/// Dataflow scenarios per Fig. 12: the first Sum reads `û` from the Data
/// Buffer (scenario b); Updates and later Sums reuse `û` through the
/// horizontal feedback path (scenarios c/d) unless
/// `dataflow.routing_feedback` is disabled, in which case each re-reads
/// the Data Memory. With `dataflow.skip_first_softmax` the first softmax
/// is replaced by the direct `c_ij = 1/J` initialization (Sec. V), whose
/// cost is a single coupling broadcast into the Routing Buffer.
pub fn routing_steps(net: &CapsNetConfig, cfg: &AcceleratorConfig) -> Vec<RoutingStepTiming> {
    let caps = u64_from(net.num_primary_caps());
    let classes = u64_from(net.num_classes);
    let in_dim = u64_from(net.pc_caps_dim);
    let out_dim = u64_from(net.class_caps_dim);
    let au = u64_from(cfg.activation_units);
    let u_hat_bytes = checked_product("û working set", &[caps, classes, out_dim]);
    let coupling_bytes = checked_product("coupling set", &[caps, classes]);
    // Checked independently of `u_hat_bytes`/`coupling_bytes`: with
    // `caps == 0` those products are 0 and would mask an overflow here.
    let cc_bytes = checked_product("class capsules", &[classes, out_dim]);
    let coupling_rw = checked_product("coupling read+write", &[2, coupling_bytes]);
    let mut steps = Vec::new();

    // Load: stage the û working set into the Data Buffer once.
    steps.push(RoutingStepTiming {
        step: RoutingStep::Load,
        cycles: ceil_div(u_hat_bytes, cfg.data_mem_bw),
        data_mem_bytes: u_hat_bytes,
    });

    // FC: û_{j|i} = W_ij · u_i — one (in_dim × classes·out_dim) matmul
    // per input capsule with M = 1; tiles pipeline across capsules.
    let fc_weight_bytes = checked_product("ClassCaps FC weights", &[u_hat_bytes, in_dim]);
    let fc_shape_tiles = checked_product(
        "ClassCaps FC tiles",
        &[caps, ceil_div(cc_bytes, u64_from(cfg.cols))],
    );
    let load = u64_from(cfg.rows) + 1;
    let fc_compute = if tiles_pipeline(cfg) {
        load + 1
            + checked_product(
                "ClassCaps FC pipeline",
                &[fc_shape_tiles - 1, 1u64.max(load)],
            )
            + u64_from(cfg.rows + cfg.cols)
    } else {
        checked_product(
            "ClassCaps FC cycles",
            &[fc_shape_tiles, load + 1 + u64_from(cfg.rows + cfg.cols)],
        )
    };
    let fc_stream = ceil_div(fc_weight_bytes, cfg.weight_mem_bw);
    steps.push(RoutingStepTiming {
        step: RoutingStep::Fc,
        cycles: fc_compute.max(fc_stream),
        data_mem_bytes: u_hat_bytes, // û written back as produced
    });

    // Per-iteration steps.
    for iter in 1..=net.routing_iterations {
        // Softmax (skipped on iteration 1 with the Sec. V optimization —
        // replaced by the uniform-coupling broadcast).
        let softmax = if iter == 1 && cfg.dataflow.skip_first_softmax {
            // Write c_ij = 1/J into the Routing Buffer.
            ceil_div(coupling_bytes, cfg.routing_buf_bw)
        } else {
            let compute = ceil_div(caps, au) * ActivationUnit::softmax_cycles(classes);
            let traffic = ceil_div(coupling_rw, cfg.routing_buf_bw);
            compute.max(traffic)
        };
        steps.push(RoutingStepTiming {
            step: RoutingStep::Softmax(iter),
            cycles: softmax,
            data_mem_bytes: 0,
        });

        // Sum: per class, û tiles (R capsules × out_dim) weight-stationary
        // with the coupling row streamed (M = 1).
        let chunks = ceil_div(caps, u64_from(cfg.rows));
        let ntiles = ceil_div(out_dim, u64_from(cfg.cols));
        let drain = u64_from(cfg.rows + cfg.cols);
        let per_class = if tiles_pipeline(cfg) {
            let steady = checked_product("routing Sum pipeline", &[chunks - 1, 1u64.max(load)]);
            checked_product("routing Sum tiles", &[ntiles, load + 1 + steady + drain])
        } else {
            checked_product("routing Sum tiles", &[ntiles, chunks, load + 1 + drain])
        };
        let mut sum_cycles = checked_product("routing Sum cycles", &[classes, per_class]);
        let mut sum_mem = 0;
        if !cfg.dataflow.routing_feedback {
            // No feedback: re-read û from Data Memory for this pass.
            sum_cycles = sum_cycles.max(ceil_div(u_hat_bytes, cfg.data_mem_bw));
            sum_mem = u_hat_bytes;
        }
        steps.push(RoutingStepTiming {
            step: RoutingStep::Sum(iter),
            cycles: sum_cycles,
            data_mem_bytes: sum_mem,
        });

        // Squash: one class capsule per activation unit.
        let squash_compute = ceil_div(classes, au) * ActivationUnit::squash_cycles(out_dim);
        let squash_traffic = ceil_div(cc_bytes, cfg.routing_buf_bw); // write v_j
        steps.push(RoutingStepTiming {
            step: RoutingStep::Squash(iter),
            cycles: squash_compute.max(squash_traffic),
            data_mem_bytes: 0,
        });

        // Update (all but the last iteration): per class, v_j is the
        // weight tile (out_dim × 1) and all û rows stream (M = caps).
        if iter < net.routing_iterations {
            let per_class_update = load + caps + drain;
            let mut upd_cycles =
                checked_product("routing Update cycles", &[classes, per_class_update]);
            let traffic = ceil_div(coupling_rw, cfg.routing_buf_bw); // b read+write
            upd_cycles = upd_cycles.max(traffic);
            let mut upd_mem = 0;
            if !cfg.dataflow.routing_feedback {
                upd_cycles = upd_cycles.max(ceil_div(u_hat_bytes, cfg.data_mem_bw));
                upd_mem = u_hat_bytes;
            }
            steps.push(RoutingStepTiming {
                step: RoutingStep::Update(iter),
                cycles: upd_cycles,
                data_mem_bytes: upd_mem,
            });
        }
    }
    steps
}

/// Complete inference timing: the three layers of Fig. 16, with the
/// ClassCaps layer broken into the steps of Fig. 17.
#[derive(Clone, PartialEq, Debug)]
pub struct InferenceTiming {
    /// Conv1 timing.
    pub conv1: LayerTiming,
    /// PrimaryCaps timing.
    pub primary_caps: LayerTiming,
    /// ClassCaps step-by-step timing.
    pub class_caps_steps: Vec<RoutingStepTiming>,
}

impl InferenceTiming {
    /// Total ClassCaps cycles.
    pub fn class_caps_cycles(&self) -> u64 {
        self.class_caps_steps.iter().map(|s| s.cycles).sum()
    }

    /// Total inference cycles.
    pub fn total_cycles(&self) -> u64 {
        self.conv1.cycles + self.primary_caps.cycles + self.class_caps_cycles()
    }

    /// Total inference time in microseconds.
    pub fn total_time_us(&self, cfg: &AcceleratorConfig) -> f64 {
        cfg.cycles_to_us(self.total_cycles())
    }

    /// Per-layer `(name, cycles)` rows in Fig. 16 order.
    pub fn layer_rows(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("Conv1", self.conv1.cycles),
            ("PrimaryCaps", self.primary_caps.cycles),
            ("ClassCaps", self.class_caps_cycles()),
        ]
    }
}

/// Computes the full-inference timing for a network on an accelerator
/// configuration.
///
/// # Example
///
/// ```
/// use capsacc_core::{timing, AcceleratorConfig};
/// use capsacc_capsnet::CapsNetConfig;
/// let t = timing::full_inference(&AcceleratorConfig::paper(), &CapsNetConfig::mnist());
/// // PrimaryCaps (5.3 MB of weights for 36 output pixels) dominates.
/// assert!(t.primary_caps.cycles > t.conv1.cycles);
/// ```
pub fn full_inference(cfg: &AcceleratorConfig, net: &CapsNetConfig) -> InferenceTiming {
    InferenceTiming {
        conv1: conv_layer("Conv1", &net.conv1_geometry(), true, cfg),
        primary_caps: primary_caps_layer(net, cfg),
        class_caps_steps: routing_steps(net, cfg),
    }
}

/// Checks that the working sets of a network fit the configured buffer
/// capacities, returning one human-readable warning per violation (empty
/// means everything fits — true for the paper's design point).
///
/// Checked working sets:
///
/// - Data Buffer: the `û` prediction set staged for routing (Load step),
///   and one im2col data stripe per conv layer;
/// - Routing Buffer: couplings + logits + class capsules;
/// - Weight Buffer: one weight tile (double-buffered).
///
/// # Example
///
/// ```
/// use capsacc_core::{timing, AcceleratorConfig};
/// use capsacc_capsnet::CapsNetConfig;
/// let warnings = timing::working_set_check(&AcceleratorConfig::paper(), &CapsNetConfig::mnist());
/// assert!(warnings.is_empty());
/// ```
pub fn working_set_check(cfg: &AcceleratorConfig, net: &CapsNetConfig) -> Vec<String> {
    let mut warnings = Vec::new();
    // Footprints are computed in u64 with overflow checks: a working-set
    // *checker* wrapping silently on an adversarial net would defeat its
    // own purpose.
    let caps = u64_from(net.num_primary_caps());
    let classes = u64_from(net.num_classes);
    let out_dim = u64_from(net.class_caps_dim);

    let u_hat_bytes = checked_product("û working set", &[caps, classes, out_dim]);
    if u_hat_bytes > u64_from(cfg.data_buffer_bytes) {
        warnings.push(format!(
            "û working set ({u_hat_bytes} B) exceeds the Data Buffer ({} B): \
             routing reuse degrades to memory re-reads",
            cfg.data_buffer_bytes
        ));
    }
    for (name, g) in [
        ("Conv1", net.conv1_geometry()),
        ("PrimaryCaps", net.primary_caps_geometry()),
    ] {
        let stripe = checked_product(
            "im2col stripe",
            &[u64_from(g.patches()), u64_from(cfg.rows.min(g.patch_len()))],
        );
        if stripe > u64_from(cfg.data_buffer_bytes) {
            warnings.push(format!(
                "{name} im2col stripe ({stripe} B) exceeds the Data Buffer ({} B)",
                cfg.data_buffer_bytes
            ));
        }
    }

    let routing_set = checked_product("routing state", &[2, caps, classes])
        + checked_product("class capsules", &[classes, out_dim]);
    if routing_set > u64_from(cfg.routing_buffer_bytes) {
        warnings.push(format!(
            "routing state ({routing_set} B of couplings+logits+capsules) exceeds \
             the Routing Buffer ({} B)",
            cfg.routing_buffer_bytes
        ));
    }

    let tile = 2 * cfg.rows * cfg.cols; // double-buffered weight tile
    if tile > cfg.weight_buffer_bytes {
        warnings.push(format!(
            "double-buffered weight tile ({tile} B) exceeds the Weight Buffer ({} B)",
            cfg.weight_buffer_bytes
        ));
    }
    warnings
}

/// Timing of a convolutional layer executed for a whole batch with the
/// filter tiles held resident across images (layer-major schedule).
pub fn conv_layer_batch(
    name: &'static str,
    g: &ConvGeometry,
    relu: bool,
    batch: u64,
    cfg: &AcceleratorConfig,
) -> LayerTiming {
    let shape = MatmulShape {
        m: u64_from(g.patches()),
        k: u64_from(g.patch_len()),
        n: u64_from(g.out_ch),
    };
    let compute = batch_matmul_cycles(shape, batch, cfg);
    let biases = if cfg.dataflow.weight_reuse {
        u64_from(g.out_ch)
    } else {
        checked_product("bias reloads", &[batch, u64_from(g.out_ch)])
    };
    let weight_bytes = batch_matmul_weight_bytes(shape, batch, cfg) + biases;
    let act = if relu {
        // ReLU is pipelined behind the output stream: latency only.
        ActivationUnit::reduce_cycles(0)
    } else {
        0
    };
    let macs = checked_product("batched conv MACs", &[batch, g.macs()]);
    LayerTiming::new(name, compute, weight_bytes, act, macs, cfg)
}

/// Batched PrimaryCaps timing: the weight-resident convolution plus the
/// per-capsule squash, which is per-image work and scales with the
/// batch.
pub fn primary_caps_layer_batch(
    net: &CapsNetConfig,
    batch: u64,
    cfg: &AcceleratorConfig,
) -> LayerTiming {
    let g = net.primary_caps_geometry();
    let conv = conv_layer_batch("PrimaryCaps", &g, false, batch, cfg);
    let caps = u64_from(net.num_primary_caps());
    let au = u64_from(cfg.activation_units);
    let squash = checked_product(
        "batched squash cycles",
        &[
            batch,
            ceil_div(caps, au),
            ActivationUnit::squash_cycles(u64_from(net.pc_caps_dim)),
        ],
    );
    LayerTiming::new(
        "PrimaryCaps",
        conv.compute_cycles,
        conv.weight_bytes,
        squash,
        conv.macs,
        cfg,
    )
}

/// The ClassCaps steps for a whole batch.
///
/// Only the FC step amortizes: its `W_ij` blocks stay resident while
/// every image's capsule vectors stream against them, so the 1.47 MB
/// weight stream is paid once per batch. Everything else (Load, softmax,
/// sums, squashes, updates) operates on per-image state and scales
/// linearly with the batch.
pub fn batch_routing_steps(
    net: &CapsNetConfig,
    batch: u64,
    cfg: &AcceleratorConfig,
) -> Vec<RoutingStepTiming> {
    let mut steps = routing_steps(net, cfg);
    for s in steps.iter_mut() {
        if s.step == RoutingStep::Fc && cfg.dataflow.weight_reuse {
            let caps = u64_from(net.num_primary_caps());
            let classes = u64_from(net.num_classes);
            let out_dim = u64_from(net.class_caps_dim);
            let in_dim = u64_from(net.pc_caps_dim);
            let fc_weight_bytes =
                checked_product("ClassCaps FC weights", &[caps, classes, out_dim, in_dim]);
            let fc_tiles = checked_product(
                "ClassCaps FC tiles",
                &[
                    caps,
                    ceil_div(
                        checked_product("class capsules", &[classes, out_dim]),
                        u64_from(cfg.cols),
                    ),
                ],
            );
            let load = u64_from(cfg.rows) + 1;
            // M = batch rows per capsule-tile instead of 1.
            let fc_compute = if tiles_pipeline(cfg) {
                load + batch
                    + checked_product("ClassCaps FC pipeline", &[fc_tiles - 1, batch.max(load)])
                    + u64_from(cfg.rows + cfg.cols)
            } else {
                checked_product(
                    "ClassCaps FC cycles",
                    &[fc_tiles, load + batch + u64_from(cfg.rows + cfg.cols)],
                )
            };
            let fc_stream = ceil_div(fc_weight_bytes, cfg.weight_mem_bw);
            s.cycles = fc_compute.max(fc_stream);
            s.data_mem_bytes =
                checked_product("batched û stream", &[batch, caps, classes, out_dim]);
        } else {
            s.cycles = checked_product("batched step cycles", &[s.cycles, batch]);
            s.data_mem_bytes = checked_product("batched step bytes", &[s.data_mem_bytes, batch]);
        }
    }
    steps
}

/// Closed-form timing of a layer-major batched inference pass — the
/// analytical counterpart of the engine's
/// [`crate::Accelerator::run_batch`], with the weight-load terms
/// amortized over the batch.
#[derive(Clone, PartialEq, Debug)]
pub struct BatchInferenceTiming {
    /// Batch size the totals cover.
    pub batch: u64,
    /// Conv1 timing for the whole batch.
    pub conv1: LayerTiming,
    /// PrimaryCaps timing for the whole batch.
    pub primary_caps: LayerTiming,
    /// ClassCaps step-by-step timing for the whole batch.
    pub class_caps_steps: Vec<RoutingStepTiming>,
    /// ClassCaps FC weight bytes for the whole batch (not part of a
    /// [`LayerTiming`], tracked here for the per-image accounting).
    pub fc_weight_bytes: u64,
}

impl BatchInferenceTiming {
    /// Total ClassCaps cycles for the batch.
    pub fn class_caps_cycles(&self) -> u64 {
        self.class_caps_steps.iter().map(|s| s.cycles).sum()
    }

    /// Total cycles for the batch.
    pub fn total_cycles(&self) -> u64 {
        self.conv1.cycles + self.primary_caps.cycles + self.class_caps_cycles()
    }

    /// Amortized cycles per image.
    pub fn cycles_per_image(&self) -> f64 {
        self.total_cycles() as f64 / self.batch as f64
    }

    /// Amortized wall-clock time per image in microseconds.
    pub fn time_per_image_us(&self, cfg: &AcceleratorConfig) -> f64 {
        cfg.cycles_to_us(self.total_cycles()) / self.batch as f64
    }

    /// Amortized weight bytes read per image (conv layers + FC).
    pub fn weight_bytes_per_image(&self) -> f64 {
        (self.conv1.weight_bytes + self.primary_caps.weight_bytes + self.fc_weight_bytes) as f64
            / self.batch as f64
    }
}

/// Computes the batched-inference timing: `batch` images through the
/// layer-major weight-resident schedule.
///
/// With `batch == 1` this reduces exactly to [`full_inference`].
///
/// # Example
///
/// ```
/// use capsacc_core::{timing, AcceleratorConfig};
/// use capsacc_capsnet::CapsNetConfig;
/// let cfg = AcceleratorConfig::paper();
/// let net = CapsNetConfig::mnist();
/// let b1 = timing::full_inference_batch(&cfg, &net, 1);
/// let b16 = timing::full_inference_batch(&cfg, &net, 16);
/// // 16 images pay for one weight load: fewer cycles per image.
/// assert!(b16.cycles_per_image() < b1.cycles_per_image());
/// ```
///
/// # Panics
///
/// Panics if `batch` is zero.
pub fn full_inference_batch(
    cfg: &AcceleratorConfig,
    net: &CapsNetConfig,
    batch: u64,
) -> BatchInferenceTiming {
    assert!(batch > 0, "batch must be non-zero");
    let fc_once = checked_product(
        "ClassCaps FC weights",
        &[
            u64_from(net.num_primary_caps()),
            u64_from(net.num_classes),
            u64_from(net.class_caps_dim),
            u64_from(net.pc_caps_dim),
        ],
    );
    let fc_weight_bytes = if cfg.dataflow.weight_reuse {
        fc_once
    } else {
        checked_product("batched FC weight reloads", &[batch, fc_once])
    };
    BatchInferenceTiming {
        batch,
        conv1: conv_layer_batch("Conv1", &net.conv1_geometry(), true, batch, cfg),
        primary_caps: primary_caps_layer_batch(net, batch, cfg),
        class_caps_steps: batch_routing_steps(net, batch, cfg),
        fc_weight_bytes,
    }
}

/// Steady-state batch throughput in inferences per second, assuming the
/// three layer phases pipeline across consecutive images (each phase's
/// resources are distinct: the array time-multiplexes, so the bottleneck
/// phase sets the rate — a standard layer-pipelining upper bound).
///
/// # Example
///
/// ```
/// use capsacc_core::{timing, AcceleratorConfig};
/// use capsacc_capsnet::CapsNetConfig;
/// let cfg = AcceleratorConfig::paper();
/// let single = 1e6 / timing::full_inference(&cfg, &CapsNetConfig::mnist()).total_time_us(&cfg);
/// let pipelined = timing::batch_throughput(&cfg, &CapsNetConfig::mnist());
/// assert!(pipelined >= single);
/// ```
pub fn batch_throughput(cfg: &AcceleratorConfig, net: &CapsNetConfig) -> f64 {
    let t = full_inference(cfg, net);
    let bottleneck = t
        .conv1
        .cycles
        .max(t.primary_caps.cycles)
        .max(t.class_caps_cycles());
    1e6 / cfg.cycles_to_us(bottleneck)
}

/// Analytical estimate of the memory/buffer traffic of one full
/// inference — the closed-form counterpart of the engine's counters,
/// usable at MNIST scale where the cycle-accurate engine is slow.
///
/// Accounting: weight reads once per (K, N) tile visit (or per data row
/// without reuse); data-buffer reads once per tile's data stream; the û
/// working set staged once (plus re-reads when the feedback path is
/// disabled); routing-buffer traffic for couplings, logits and class
/// capsules per iteration.
pub fn traffic_estimate(cfg: &AcceleratorConfig, net: &CapsNetConfig) -> crate::TrafficReport {
    batch_traffic_estimate(cfg, net, 1)
}

/// Analytical traffic estimate of a layer-major batched pass: weight
/// reads are charged once per *batch* (the residency amortization),
/// while everything keyed to per-image state — data streams, the û
/// staging, all routing traffic — scales linearly with the batch.
///
/// With `batch == 1` this is exactly [`traffic_estimate`].
///
/// # Panics
///
/// Panics if `batch` is zero.
pub fn batch_traffic_estimate(
    cfg: &AcceleratorConfig,
    net: &CapsNetConfig,
    batch: u64,
) -> crate::TrafficReport {
    use crate::{MemoryKind, TrafficReport};
    assert!(batch > 0, "batch must be non-zero");
    let mut t = TrafficReport::default();
    let (r, c) = (u64_from(cfg.rows), u64_from(cfg.cols));
    let product = checked_product;

    let conv = |t: &mut TrafficReport, g: &ConvGeometry| {
        let shape = MatmulShape {
            m: u64_from(g.patches()),
            k: u64_from(g.patch_len()),
            n: u64_from(g.out_ch),
        };
        let biases = if cfg.dataflow.weight_reuse {
            u64_from(g.out_ch)
        } else {
            product("bias reloads", &[batch, u64_from(g.out_ch)])
        };
        let wbytes = batch_matmul_weight_bytes(shape, batch, cfg) + biases;
        t.read(MemoryKind::WeightMemory, wbytes);
        t.read(MemoryKind::WeightBuffer, wbytes);
        // Off chip, each weight and bias crosses the DRAM channel once
        // per batch (the engine's prefetcher fetches every tile exactly
        // once; biases ride along with the layer's stream).
        t.read(
            MemoryKind::Dram,
            product("conv weights", &[shape.k, shape.n]) + u64_from(g.out_ch),
        );
        // Every N-tile re-streams all data rows over each K-slice, for
        // every image.
        let nn = ceil_div(shape.n, c);
        t.read(
            MemoryKind::DataBuffer,
            product("conv data stream", &[batch, nn, shape.m, shape.k]),
        );
        t.read(
            MemoryKind::DataMemory,
            product("conv inputs", &[batch, u64_from(g.input_len())]),
        );
        t.write(
            MemoryKind::DataMemory,
            product("conv outputs", &[batch, u64_from(g.output_len())]),
        );
    };
    // Input images are staged from DRAM once per image.
    t.read(
        MemoryKind::Dram,
        product(
            "input staging",
            &[batch, u64_from(net.conv1_geometry().input_len())],
        ),
    );
    conv(&mut t, &net.conv1_geometry());
    conv(&mut t, &net.primary_caps_geometry());

    let caps = u64_from(net.num_primary_caps());
    let classes = u64_from(net.num_classes);
    let in_dim = u64_from(net.pc_caps_dim);
    let out_dim = u64_from(net.class_caps_dim);
    let u_hat_bytes = product("û working set", &[caps, classes, out_dim]);
    let coupling_bytes = product("coupling set", &[caps, classes]);

    // FC: each W_ij read once per batch (its block stays resident while
    // every image streams); capsule inputs streamed per N-tile per image.
    let fc_once = product("ClassCaps FC weights", &[u_hat_bytes, in_dim]);
    let fc_weights = if cfg.dataflow.weight_reuse {
        fc_once
    } else {
        product("batched FC weight reloads", &[batch, fc_once])
    };
    t.read(MemoryKind::WeightMemory, fc_weights);
    t.read(MemoryKind::WeightBuffer, fc_weights);
    t.read(MemoryKind::Dram, fc_once);
    t.read(
        MemoryKind::DataBuffer,
        product(
            "FC capsule stream",
            &[
                batch,
                caps,
                ceil_div(product("class capsules", &[classes, out_dim]), c),
                in_dim,
            ],
        ),
    );
    t.write(
        MemoryKind::DataMemory,
        product("û writeback", &[batch, u_hat_bytes]),
    );
    // û staged into the Data Buffer once per image (the Load step).
    t.read(
        MemoryKind::DataMemory,
        product("û staging", &[batch, u_hat_bytes]),
    );
    t.write(
        MemoryKind::DataBuffer,
        product("û staging", &[batch, u_hat_bytes]),
    );

    let iters = u64_from(net.routing_iterations);
    // Sums: û tiles read from the Data Buffer each iteration; couplings
    // read per iteration. Ceil the capsule chunking like the mapping.
    // All routing state is per-image, so the batch scales it linearly.
    let sum_tile_reads = product(
        "routing Sum tile reads",
        &[classes, ceil_div(caps, r), r, out_dim.min(c)],
    );
    t.read(
        MemoryKind::DataBuffer,
        product("routing Sum stream", &[batch, sum_tile_reads, iters]),
    );
    t.read(
        MemoryKind::RoutingBuffer,
        product("coupling reads", &[batch, coupling_bytes, iters]),
    );
    t.write(
        MemoryKind::RoutingBuffer,
        product("capsule writes", &[batch, classes, out_dim, iters]),
    );
    // Updates: v read, logits updated, couplings rewritten.
    t.read(
        MemoryKind::RoutingBuffer,
        product("update v reads", &[batch, classes, out_dim, iters - 1]),
    );
    t.write(
        MemoryKind::RoutingBuffer,
        product(
            "update logit writes",
            &[batch, 2, coupling_bytes, iters - 1],
        ),
    );
    if !cfg.dataflow.routing_feedback {
        // Re-read û from Data Memory for every later sum and update.
        t.read(
            MemoryKind::DataMemory,
            product("û re-reads", &[batch, u_hat_bytes, 2 * (iters - 1)]),
        );
    }
    t
}

// ---------------------------------------------------------------------
// Memory-aware model: the closed-form counterpart of the engine's
// memory hierarchy. Both sides drive the same `MemorySubsystem` tile
// replay from `capsacc-memory`, so their stall accounting agrees
// *exactly* — asserted against the ticked engine on serial tiny configs
// by `tests/memory_equivalence.rs`.

fn geometry(
    shape: MatmulShape,
    batch: u64,
    cfg: &AcceleratorConfig,
    weights_offchip: bool,
) -> MatmulGeometry {
    MatmulGeometry {
        m: usize_from(shape.m),
        k: usize_from(shape.k),
        n: usize_from(shape.n),
        batch: usize_from(batch),
        rows: cfg.rows,
        cols: cfg.cols,
        weights_offchip,
        // The fill-hiding window per tile must match the base schedule
        // this model adds stalls to (the engine always passes Serial).
        schedule: if !cfg.dataflow.weight_reuse {
            TileSchedule::ReloadPerRow
        } else if tiles_pipeline(cfg) {
            TileSchedule::Pipelined
        } else {
            TileSchedule::Serial
        },
    }
}

/// Memory-hierarchy stall cycles of one batched matmul under
/// `cfg.memory`, with per-tile fill-hiding windows matching the
/// configured tile schedule. On serial-tile, reuse-enabled
/// configurations (`dataflow.pipelined_tiles == false`,
/// `dataflow.weight_reuse == true`) this is exactly what the engine's
/// [`crate::Accelerator::matmul_batch`] adds to its stall counter for
/// the same shape — the ticked engine executes tiles serially and, like
/// [`batch_matmul_cycles`], always simulates the real design point with
/// the second weight register present, so the `weight_reuse` ablation's
/// [`TileSchedule::ReloadPerRow`] windows are analytical-only. Zero
/// under `IdealMemory` either way.
pub fn matmul_mem_stalls(
    shape: MatmulShape,
    batch: u64,
    cfg: &AcceleratorConfig,
    weights_offchip: bool,
) -> u64 {
    MemorySubsystem::new(cfg.memory).matmul(&geometry(shape, batch, cfg, weights_offchip))
}

/// Memory-aware batched inference timing: the ideal-memory closed-form
/// model plus the hierarchy's stalls, layer by layer.
#[derive(Clone, PartialEq, Debug)]
pub struct MemInferenceTiming {
    /// The ideal-memory timing the stalls are added on top of.
    pub base: BatchInferenceTiming,
    /// Conv1 stalls (input staging + conv tile transactions).
    pub conv1_stall_cycles: u64,
    /// PrimaryCaps stalls.
    pub primary_caps_stall_cycles: u64,
    /// ClassCaps stalls (FC weight prefetch + routing operand bursts).
    pub class_caps_stall_cycles: u64,
    /// The full memory-hierarchy report of the replay.
    pub report: MemReport,
}

impl MemInferenceTiming {
    /// Total cycles for the batch including memory stalls.
    pub fn total_cycles(&self) -> u64 {
        self.base.total_cycles() + self.report.stall_cycles
    }

    /// Amortized cycles per image including memory stalls.
    pub fn cycles_per_image(&self) -> f64 {
        self.total_cycles() as f64 / self.base.batch as f64
    }

    /// Fraction of the total cycles lost to the memory hierarchy.
    pub fn stall_fraction(&self) -> f64 {
        self.report.stall_cycles as f64 / self.total_cycles() as f64
    }
}

/// Replays the exact sequence of memory transactions the engine's
/// `run_batch` issues — input staging, the two convolutions, the
/// per-capsule FC and every per-image routing matmul — through one
/// [`MemorySubsystem`].
fn replay_inference_memory(
    cfg: &AcceleratorConfig,
    net: &CapsNetConfig,
    batch: u64,
) -> (MemReport, [u64; 3]) {
    let mut mem = MemorySubsystem::new(cfg.memory);
    let g1 = net.conv1_geometry();
    let gp = net.primary_caps_geometry();
    let (caps, classes) = (u64_from(net.num_primary_caps()), u64_from(net.num_classes));
    let (in_dim, out_dim) = (u64_from(net.pc_caps_dim), u64_from(net.class_caps_dim));

    let conv_shape = |g: &ConvGeometry| MatmulShape {
        m: u64_from(g.patches()),
        k: u64_from(g.patch_len()),
        n: u64_from(g.out_ch),
    };
    // Many of run_batch's transactions are identical repeats (one FC
    // matmul per input capsule, one Sum/Update matmul per class per
    // iteration per image). Each repeat restarts the prefetch timeline,
    // so replaying the geometry once and scaling its delta is
    // bit-identical to looping — and far cheaper inside a DSE sweep.
    let repeat = |mem: &mut MemorySubsystem, g: &MatmulGeometry, count: u64| -> u64 {
        if count == 0 {
            return 0;
        }
        let before = mem.report();
        let one = mem.matmul(g);
        mem.charge(&mem.report().since(&before).scaled(count - 1));
        one * count
    };

    let conv1 = mem.stage_input(checked_product(
        "input staging",
        &[batch, u64_from(g1.input_len())],
    )) + mem.matmul(&geometry(conv_shape(&g1), batch, cfg, true));
    mem.stage_bias(u64_from(g1.out_ch));
    let primary = mem.matmul(&geometry(conv_shape(&gp), batch, cfg, true));
    mem.stage_bias(u64_from(gp.out_ch));

    let fc_shape = MatmulShape {
        m: 1,
        k: in_dim,
        n: checked_product("ClassCaps FC width", &[classes, out_dim]),
    };
    let mut class_caps = repeat(&mut mem, &geometry(fc_shape, batch, cfg, true), caps);
    // Routing operates on per-image on-chip state through the exact
    // sequential code path: per class, Sum streams the coupling row
    // against resident û tiles; Update streams every û row against the
    // resident v_j column.
    let sum_shape = MatmulShape {
        m: 1,
        k: caps,
        n: out_dim,
    };
    let update_shape = MatmulShape {
        m: caps,
        k: out_dim,
        n: 1,
    };
    let iters = u64_from(net.routing_iterations);
    class_caps += repeat(
        &mut mem,
        &geometry(sum_shape, 1, cfg, false),
        checked_product("routing Sum repeats", &[batch, iters, classes]),
    );
    class_caps += repeat(
        &mut mem,
        &geometry(update_shape, 1, cfg, false),
        checked_product("routing Update repeats", &[batch, iters - 1, classes]),
    );
    (mem.report(), [conv1, primary, class_caps])
}

/// Memory-aware batched inference timing under `cfg.memory`: the
/// ideal-memory closed form plus an exact replay of the engine's memory
/// transactions. With `MemoryConfig::ideal()` (the default) this is
/// [`full_inference_batch`] with zero stalls.
///
/// # Example
///
/// ```
/// use capsacc_core::{timing, AcceleratorConfig, MemoryConfig};
/// use capsacc_capsnet::CapsNetConfig;
/// let net = CapsNetConfig::mnist();
/// let ideal = AcceleratorConfig::paper();
/// let mut finite = ideal;
/// finite.memory = MemoryConfig::paper();
/// let t_ideal = timing::full_inference_batch_mem(&ideal, &net, 16);
/// let t_finite = timing::full_inference_batch_mem(&finite, &net, 16);
/// assert_eq!(t_ideal.report.stall_cycles, 0);
/// assert!(t_finite.total_cycles() > t_ideal.total_cycles());
/// ```
///
/// # Panics
///
/// Panics if `batch` is zero.
pub fn full_inference_batch_mem(
    cfg: &AcceleratorConfig,
    net: &CapsNetConfig,
    batch: u64,
) -> MemInferenceTiming {
    let base = full_inference_batch(cfg, net, batch);
    let (report, [conv1, primary, class_caps]) = replay_inference_memory(cfg, net, batch);
    MemInferenceTiming {
        base,
        conv1_stall_cycles: conv1,
        primary_caps_stall_cycles: primary,
        class_caps_stall_cycles: class_caps,
        report,
    }
}

/// Memory-aware single-inference timing: [`full_inference_batch_mem`]
/// with a batch of one.
pub fn full_inference_mem(cfg: &AcceleratorConfig, net: &CapsNetConfig) -> MemInferenceTiming {
    full_inference_batch_mem(cfg, net, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::paper()
    }

    #[test]
    fn serial_matmul_formula() {
        let mut c = cfg();
        c.dataflow.pipelined_tiles = false;
        // 4×4 array, one tile: load (5) + stream (3 + 4 + 4) = 16.
        c.rows = 4;
        c.cols = 4;
        let got = matmul_cycles(MatmulShape { m: 3, k: 4, n: 4 }, &c);
        assert_eq!(got, 16);
        // Two K-tiles, two N-tiles: 4 tiles.
        let got = matmul_cycles(MatmulShape { m: 3, k: 8, n: 8 }, &c);
        assert_eq!(got, 4 * 16);
    }

    #[test]
    fn pipelined_is_never_slower() {
        let mut serial = cfg();
        serial.dataflow.pipelined_tiles = false;
        let pipelined = cfg();
        for (m, k, n) in [(1, 8, 160), (400, 81, 256), (36, 2304, 256), (16, 1152, 16)] {
            let shape = MatmulShape { m, k, n };
            assert!(
                matmul_cycles(shape, &pipelined) <= matmul_cycles(shape, &serial),
                "pipelining regressed {shape:?}"
            );
        }
    }

    #[test]
    fn no_weight_reuse_costs_loads_per_row() {
        let mut c = cfg();
        c.dataflow.weight_reuse = false;
        c.rows = 4;
        c.cols = 4;
        let shape = MatmulShape { m: 3, k: 4, n: 4 };
        // 3 rows × 5-cycle loads + stream 11.
        assert_eq!(matmul_cycles(shape, &c), 3 * 5 + 11);
        assert_eq!(matmul_weight_bytes(shape, &c), 16 * 3);
        c.dataflow.weight_reuse = true;
        assert_eq!(matmul_weight_bytes(shape, &c), 16);
    }

    #[test]
    fn primarycaps_weight_stream_is_near_compute() {
        // PrimaryCaps moves 5.3 MB of weights for only 36 output pixels:
        // the weight stream (5 308 672 B at 8 B/cycle) runs neck-and-neck
        // with compute — the layer the GPU keeps an edge on (Fig. 16).
        let t = primary_caps_layer(&CapsNetConfig::mnist(), &cfg());
        assert_eq!(t.weight_stream_cycles, 5_308_672_u64.div_ceil(8));
        let ratio = t.compute_cycles as f64 / t.weight_stream_cycles as f64;
        assert!((0.8..1.5).contains(&ratio), "ratio = {ratio}");
        // And it dominates the whole inference.
        let full = full_inference(&cfg(), &CapsNetConfig::mnist());
        assert!(full.primary_caps.cycles > full.conv1.cycles);
        assert!(full.primary_caps.cycles > full.class_caps_cycles());
    }

    #[test]
    fn conv1_is_compute_bound() {
        let t = conv_layer(
            "Conv1",
            &CapsNetConfig::mnist().conv1_geometry(),
            true,
            &cfg(),
        );
        assert!(t.compute_cycles > t.weight_stream_cycles);
        assert_eq!(t.macs, 400 * 81 * 256);
    }

    #[test]
    fn routing_steps_sequence_matches_fig17() {
        let steps = routing_steps(&CapsNetConfig::mnist(), &cfg());
        let names: Vec<String> = steps.iter().map(|s| s.step.to_string()).collect();
        assert_eq!(
            names,
            vec![
                "Load", "FC", "Softmax1", "Sum1", "Squash1", "Update1", "Softmax2", "Sum2",
                "Squash2", "Update2", "Softmax3", "Sum3", "Squash3",
            ]
        );
    }

    #[test]
    fn skip_first_softmax_saves_cycles() {
        let with = routing_steps(&CapsNetConfig::mnist(), &cfg());
        let mut c = cfg();
        c.dataflow.skip_first_softmax = false;
        let without = routing_steps(&CapsNetConfig::mnist(), &c);
        let s_with = with
            .iter()
            .find(|s| s.step == RoutingStep::Softmax(1))
            .expect("step");
        let s_without = without
            .iter()
            .find(|s| s.step == RoutingStep::Softmax(1))
            .expect("step");
        assert!(s_with.cycles < s_without.cycles);
        // Later softmaxes are unaffected.
        let l_with = with
            .iter()
            .find(|s| s.step == RoutingStep::Softmax(2))
            .expect("step");
        let l_without = without
            .iter()
            .find(|s| s.step == RoutingStep::Softmax(2))
            .expect("step");
        assert_eq!(l_with.cycles, l_without.cycles);
    }

    #[test]
    fn feedback_reuse_eliminates_data_memory_rereads() {
        let with = routing_steps(&CapsNetConfig::mnist(), &cfg());
        let mut c = cfg();
        c.dataflow.routing_feedback = false;
        let without = routing_steps(&CapsNetConfig::mnist(), &c);
        let mem = |steps: &[RoutingStepTiming]| -> u64 {
            steps
                .iter()
                .filter(|s| matches!(s.step, RoutingStep::Sum(_) | RoutingStep::Update(_)))
                .map(|s| s.data_mem_bytes)
                .sum()
        };
        assert_eq!(mem(&with), 0);
        // 3 sums + 2 updates re-read 184 320 bytes each.
        assert_eq!(mem(&without), 5 * 184_320);
        let cyc = |steps: &[RoutingStepTiming]| -> u64 { steps.iter().map(|s| s.cycles).sum() };
        assert!(cyc(&without) > cyc(&with));
    }

    #[test]
    fn load_step_matches_u_hat_footprint() {
        // 1152 · 10 · 16 bytes at 8 B/cycle = 23 040 cycles ≈ 92 µs at
        // 250 MHz — the paper reports the CapsAcc Load as ~9% faster than
        // the GPU's ~100 µs.
        let steps = routing_steps(&CapsNetConfig::mnist(), &cfg());
        assert_eq!(steps[0].cycles, 23_040);
    }

    #[test]
    fn full_inference_totals_are_consistent() {
        let t = full_inference(&cfg(), &CapsNetConfig::mnist());
        assert_eq!(
            t.total_cycles(),
            t.conv1.cycles + t.primary_caps.cycles + t.class_caps_cycles()
        );
        let rows = t.layer_rows();
        assert_eq!(rows.len(), 3);
        // Total inference lands in the single-digit-millisecond regime at
        // 250 MHz, like the paper's.
        let ms = t.total_time_us(&cfg()) / 1000.0;
        assert!((1.0..10.0).contains(&ms), "total = {ms} ms");
    }

    #[test]
    fn squash_step_is_negligible() {
        // The headline effect: squashing goes from the GPU bottleneck to
        // a negligible cost on CapsAcc.
        let steps = routing_steps(&CapsNetConfig::mnist(), &cfg());
        let squash: u64 = steps
            .iter()
            .filter(|s| matches!(s.step, RoutingStep::Squash(_)))
            .map(|s| s.cycles)
            .sum();
        let total: u64 = steps.iter().map(|s| s.cycles).sum();
        assert!((squash as f64) < 0.01 * total as f64);
    }

    #[test]
    fn paper_design_point_fits_all_working_sets() {
        assert!(working_set_check(&cfg(), &CapsNetConfig::mnist()).is_empty());
    }

    #[test]
    fn undersized_buffers_are_reported() {
        let mut c = cfg();
        c.data_buffer_bytes = 1024;
        c.routing_buffer_bytes = 64;
        c.weight_buffer_bytes = 16;
        let warnings = working_set_check(&c, &CapsNetConfig::mnist());
        assert!(warnings.len() >= 3, "warnings: {warnings:?}");
        assert!(warnings.iter().any(|w| w.contains("û working set")));
        assert!(warnings.iter().any(|w| w.contains("Routing Buffer")));
        assert!(warnings.iter().any(|w| w.contains("Weight Buffer")));
    }

    #[test]
    fn batch_throughput_bounded_by_bottleneck_layer() {
        let c = cfg();
        let net = CapsNetConfig::mnist();
        let t = full_inference(&c, &net);
        let rate = batch_throughput(&c, &net);
        // PrimaryCaps dominates: the pipelined rate equals its phase rate.
        let expect = 1e6 / c.cycles_to_us(t.primary_caps.cycles);
        assert!((rate - expect).abs() < 1e-9);
        // And beats the single-image latency rate.
        assert!(rate > 1e6 / t.total_time_us(&c));
    }

    #[test]
    fn traffic_estimate_has_paper_scale_footprints() {
        let t = traffic_estimate(&cfg(), &CapsNetConfig::mnist());
        use crate::MemoryKind;
        // All trainable weights read exactly once (full reuse).
        assert_eq!(t.counter(MemoryKind::WeightMemory).read_bytes, 6_804_224);
        // Feedback reuse: Data Memory reads = inputs + û staging only.
        let dm = t.counter(MemoryKind::DataMemory).read_bytes;
        let mut no_fb = cfg();
        no_fb.dataflow.routing_feedback = false;
        let t2 = traffic_estimate(&no_fb, &CapsNetConfig::mnist());
        let dm2 = t2.counter(MemoryKind::DataMemory).read_bytes;
        assert_eq!(dm2 - dm, 4 * 184_320);
    }

    #[test]
    fn traffic_estimate_no_reuse_multiplies_weight_reads() {
        let mut c = cfg();
        c.dataflow.weight_reuse = false;
        let with = traffic_estimate(&cfg(), &CapsNetConfig::mnist());
        let without = traffic_estimate(&c, &CapsNetConfig::mnist());
        use crate::MemoryKind;
        assert!(
            without.counter(MemoryKind::WeightMemory).read_bytes
                > 10 * with.counter(MemoryKind::WeightMemory).read_bytes
        );
    }

    #[test]
    fn batch_of_one_reduces_to_single_inference() {
        let c = cfg();
        let net = CapsNetConfig::mnist();
        let single = full_inference(&c, &net);
        let batched = full_inference_batch(&c, &net, 1);
        assert_eq!(batched.conv1, single.conv1);
        assert_eq!(batched.primary_caps, single.primary_caps);
        assert_eq!(batched.class_caps_steps, single.class_caps_steps);
        assert_eq!(batched.total_cycles(), single.total_cycles());
        assert_eq!(
            batch_traffic_estimate(&c, &net, 1),
            traffic_estimate(&c, &net)
        );
    }

    #[test]
    fn batched_matmul_amortizes_tile_loads() {
        let c = cfg();
        let shape = MatmulShape {
            m: 36,
            k: 2304,
            n: 256,
        };
        // Residency across the batch: strictly cheaper than N independent
        // runs, and exactly the M' = B·M schedule.
        for batch in [2u64, 4, 16] {
            let b = batch_matmul_cycles(shape, batch, &c);
            assert!(b < batch * matmul_cycles(shape, &c));
            assert_eq!(
                b,
                matmul_cycles(
                    MatmulShape {
                        m: shape.m * batch,
                        ..shape
                    },
                    &c
                )
            );
            // Weight bytes are paid once per batch.
            assert_eq!(
                batch_matmul_weight_bytes(shape, batch, &c),
                matmul_weight_bytes(shape, &c)
            );
        }
        // Without the second weight register there is nothing to hold
        // resident: the batch degenerates to independent runs.
        let mut no_reuse = c;
        no_reuse.dataflow.weight_reuse = false;
        assert_eq!(
            batch_matmul_cycles(shape, 8, &no_reuse),
            8 * matmul_cycles(shape, &no_reuse)
        );
        assert_eq!(
            batch_matmul_weight_bytes(shape, 8, &no_reuse),
            8 * matmul_weight_bytes(shape, &no_reuse)
        );
    }

    #[test]
    fn batched_primarycaps_amortizes_weight_stream() {
        // PrimaryCaps moves 5.3 MB of weights, running neck-and-neck
        // with compute at batch 1. Layer-major batching pays that stream
        // once per batch, so at batch 16 compute dominates outright and
        // per-image cycles strictly fall.
        let c = cfg();
        let net = CapsNetConfig::mnist();
        let b1 = primary_caps_layer_batch(&net, 1, &c);
        let b16 = primary_caps_layer_batch(&net, 16, &c);
        assert_eq!(b16.weight_stream_cycles, b1.weight_stream_cycles);
        assert_eq!(b16.weight_bytes, b1.weight_bytes);
        assert!(b16.compute_cycles > 10 * b16.weight_stream_cycles);
        assert!((b16.cycles as f64 / 16.0) < b1.cycles as f64);
    }

    #[test]
    fn batched_fc_amortizes_weight_stream() {
        let c = cfg();
        let net = CapsNetConfig::mnist();
        let fc = |steps: &[RoutingStepTiming]| {
            steps
                .iter()
                .find(|s| s.step == RoutingStep::Fc)
                .expect("fc step")
                .cycles
        };
        let b1 = fc(&batch_routing_steps(&net, 1, &c));
        let b16 = fc(&batch_routing_steps(&net, 16, &c));
        // The 1.47 MB of W_ij stream once per batch.
        assert!((b16 as f64 / 16.0) < 0.2 * b1 as f64);
        // Per-image routing steps scale linearly.
        let sum1: u64 = batch_routing_steps(&net, 1, &c)
            .iter()
            .filter(|s| matches!(s.step, RoutingStep::Sum(_)))
            .map(|s| s.cycles)
            .sum();
        let sum16: u64 = batch_routing_steps(&net, 16, &c)
            .iter()
            .filter(|s| matches!(s.step, RoutingStep::Sum(_)))
            .map(|s| s.cycles)
            .sum();
        assert_eq!(sum16, 16 * sum1);
    }

    #[test]
    fn batch_traffic_amortizes_weight_memory_only() {
        let c = cfg();
        let net = CapsNetConfig::mnist();
        use crate::MemoryKind;
        let b1 = batch_traffic_estimate(&c, &net, 1);
        let b16 = batch_traffic_estimate(&c, &net, 16);
        // All trainable weights still read exactly once for the batch.
        assert_eq!(
            b16.counter(MemoryKind::WeightMemory).read_bytes,
            b1.counter(MemoryKind::WeightMemory).read_bytes
        );
        // Data-side traffic scales with the batch.
        assert_eq!(
            b16.counter(MemoryKind::DataMemory).read_bytes,
            16 * b1.counter(MemoryKind::DataMemory).read_bytes
        );
        assert_eq!(
            b16.counter(MemoryKind::RoutingBuffer).total(),
            16 * b1.counter(MemoryKind::RoutingBuffer).total()
        );
        // Per-image totals therefore fall.
        assert!(b16.total_bytes_per_image(16) < b1.total_bytes_per_image(1));
    }

    #[test]
    fn undersized_weight_buffer_disables_pipelining() {
        // A buffer that holds one tile but not two cannot double-buffer:
        // the pipelined schedule must fall back to the serial one.
        let mut c = cfg();
        c.rows = 4;
        c.cols = 4;
        c.weight_buffer_bytes = 24; // 16 B tile fits, 32 B double buffer does not
        let shape = MatmulShape { m: 5, k: 16, n: 8 };
        let mut serial = c;
        serial.dataflow.pipelined_tiles = false;
        assert_eq!(matmul_cycles(shape, &c), matmul_cycles(shape, &serial));
        // With room for the double buffer, pipelining resumes.
        c.weight_buffer_bytes = 32;
        assert!(matmul_cycles(shape, &c) < matmul_cycles(shape, &serial));
    }

    #[test]
    fn ideal_memory_model_adds_no_stalls() {
        let net = CapsNetConfig::mnist();
        for batch in [1u64, 4, 16] {
            let t = full_inference_batch_mem(&cfg(), &net, batch);
            assert_eq!(t.report.stall_cycles, 0);
            assert_eq!(
                t.total_cycles(),
                full_inference_batch(&cfg(), &net, batch).total_cycles()
            );
            assert_eq!(t.stall_fraction(), 0.0);
            // The off-chip split is still counted: every parameter byte
            // (weights + biases) once per batch, inputs once per image.
            assert_eq!(t.report.dram_weight_bytes, net.total_parameters() as u64);
            assert_eq!(
                t.report.dram_data_bytes,
                batch * net.conv1_geometry().input_len() as u64
            );
        }
    }

    #[test]
    fn finite_memory_model_stalls_and_prefetch_recovers() {
        let net = CapsNetConfig::mnist();
        let mut finite = cfg();
        finite.memory = crate::MemoryConfig::paper();
        let mut naive = finite;
        naive.memory.prefetch_buffers = 1;
        let ideal = full_inference_batch_mem(&cfg(), &net, 16);
        let t = full_inference_batch_mem(&finite, &net, 16);
        let t_naive = full_inference_batch_mem(&naive, &net, 16);
        assert!(t.report.stall_cycles > 0);
        assert!(t.total_cycles() > ideal.total_cycles());
        assert!(t_naive.report.stall_cycles > t.report.stall_cycles);
        // The acceptance anchor: double buffering recovers at least half
        // of the naive (no-prefetch) stall cycles at batch 16.
        assert!(
            2 * t.report.stall_cycles <= t_naive.report.stall_cycles,
            "prefetch recovered too little: {} vs naive {}",
            t.report.stall_cycles,
            t_naive.report.stall_cycles
        );
        // Per-layer stalls decompose the total.
        assert_eq!(
            t.conv1_stall_cycles + t.primary_caps_stall_cycles + t.class_caps_stall_cycles,
            t.report.stall_cycles
        );
    }

    #[test]
    #[should_panic(expected = "overflows u64")]
    fn adversarial_net_shape_fails_loudly_instead_of_wrapping() {
        // ~2^50 primary capsules × 2^10 classes × 2^8 capsule bytes: the
        // û working set exceeds u64, and the checked products must panic
        // with context — release builds would otherwise wrap silently
        // and report garbage cycle counts.
        let net = CapsNetConfig {
            input_side: 1 << 21,
            conv1_channels: 1,
            conv1_kernel: 1,
            conv1_stride: 1,
            pc_channels: 1 << 8,
            pc_caps_dim: 1 << 8,
            pc_kernel: 1,
            pc_stride: 1,
            num_classes: 1 << 10,
            class_caps_dim: 1 << 8,
            routing_iterations: 3,
        };
        let _ = routing_steps(&net, &cfg());
    }

    #[test]
    #[should_panic(expected = "overflows u64")]
    fn working_set_check_rejects_overflowing_nets_loudly() {
        // The working-set checker itself must not wrap while checking.
        let net = CapsNetConfig {
            input_side: 1 << 21,
            conv1_channels: 1,
            conv1_kernel: 1,
            conv1_stride: 1,
            pc_channels: 1 << 8,
            pc_caps_dim: 1 << 8,
            pc_kernel: 1,
            pc_stride: 1,
            num_classes: 1 << 10,
            class_caps_dim: 1 << 8,
            routing_iterations: 3,
        };
        let _ = working_set_check(&cfg(), &net);
    }

    #[test]
    fn checked_products_are_exact_in_range() {
        // The audit must not perturb any in-range formula: spot-check the
        // paper design point against hand-computed values that predate
        // the checked-cast conversion.
        let steps = routing_steps(&CapsNetConfig::mnist(), &cfg());
        assert_eq!(steps[0].cycles, 23_040); // Load: 184 320 B at 8 B/cy
        let t = full_inference(&cfg(), &CapsNetConfig::mnist());
        assert_eq!(
            t.total_cycles(),
            t.conv1.cycles + t.primary_caps.cycles + t.class_caps_cycles()
        );
    }

    #[test]
    fn bigger_arrays_do_not_slow_compute_bound_layers() {
        let base = conv_layer(
            "Conv1",
            &CapsNetConfig::mnist().conv1_geometry(),
            true,
            &cfg(),
        );
        let mut big = cfg();
        big.rows = 32;
        big.cols = 32;
        big.activation_units = 32;
        let t = conv_layer(
            "Conv1",
            &CapsNetConfig::mnist().conv1_geometry(),
            true,
            &big,
        );
        assert!(t.compute_cycles < base.compute_cycles);
    }
}
