//! Loop-order analysis of the Fig. 13/14 mappings.
//!
//! The paper's per-layer mapping orders (Fig. 14) are chosen to
//! "minimize the accumulator size, because our CapsAcc accelerator
//! computes first the output features for the same output channel"
//! (Sec. V-B). This module quantifies that claim: for a convolution
//! mapped onto the array, it computes the peak number of in-flight
//! partial sums each per-column accumulator FIFO must hold and the
//! number of weight-tile switches, for both the paper's loop order and
//! the alternative that interleaves output channels.
//!
//! The analysis is execution-backend independent: `Ticked` and
//! `Functional` ([`crate::EngineBackend`]) drive the *same* per-column
//! [`crate::AccumulatorUnit`] FIFOs through the same tile schedule, so
//! `peak_accumulator_entries` bounds the in-flight partial sums of
//! either backend (the functional path differs only in how a tile's
//! psums are produced, never in how many are live).

use capsacc_tensor::{u64_from, ConvGeometry};

use crate::config::AcceleratorConfig;

/// Loop order of the output-channel and reduction dimensions.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum LoopOrder {
    /// The paper's order (Fig. 14a/b): all output pixels of one
    /// output-channel tile complete (across every K-tile) before the
    /// next output-channel tile starts. Each accumulator FIFO holds one
    /// tile's worth of partials.
    OutputChannelOuter,
    /// The alternative: output-channel tiles interleave inside the
    /// reduction, so partial sums for *every* output-channel tile are
    /// in flight simultaneously and must all be buffered.
    OutputChannelInner,
}

/// Result of a mapping analysis.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct MappingAnalysis {
    /// Peak in-flight partial sums per accumulator FIFO.
    pub peak_accumulator_entries: usize,
    /// Weight-tile loads into the array over the whole layer.
    pub weight_tile_loads: u64,
    /// Accumulator storage bytes implied (25-bit entries rounded to 4 B),
    /// across all `cols` units.
    pub accumulator_bytes: usize,
}

/// Analyzes a convolution under a loop order on the configured array.
///
/// # Example
///
/// ```
/// use capsacc_core::{mapping, AcceleratorConfig};
/// use capsacc_tensor::ConvGeometry;
/// let g = ConvGeometry::new(256, 20, 20, 256, 9, 9, 2); // PrimaryCaps
/// let cfg = AcceleratorConfig::paper();
/// let paper = mapping::analyze_conv(&g, mapping::LoopOrder::OutputChannelOuter, &cfg);
/// let alt = mapping::analyze_conv(&g, mapping::LoopOrder::OutputChannelInner, &cfg);
/// // The paper's order needs 16× less accumulator storage here.
/// assert!(alt.peak_accumulator_entries >= 16 * paper.peak_accumulator_entries);
/// ```
pub fn analyze_conv(
    g: &ConvGeometry,
    order: LoopOrder,
    cfg: &AcceleratorConfig,
) -> MappingAnalysis {
    let m = g.patches();
    let kk = g.patch_len().div_ceil(cfg.rows).max(1);
    let nn = g.out_ch.div_ceil(cfg.cols).max(1);
    let peak = match order {
        // One output-channel tile in flight: its m pixels.
        LoopOrder::OutputChannelOuter => m,
        // All nn output-channel tiles in flight at once.
        LoopOrder::OutputChannelInner => m * nn,
    };
    // Both orders visit every (K, N) tile once per full accumulation;
    // the inner order revisits each K-slice for every N-tile *round*,
    // which costs kk·nn loads either way with resident weights — the
    // paper's win is storage, not loads.
    let loads = u64_from(kk * nn);
    MappingAnalysis {
        peak_accumulator_entries: peak,
        weight_tile_loads: loads,
        accumulator_bytes: peak * 4 * cfg.cols,
    }
}

/// Convenience: the accumulator-size ratio of the alternative order over
/// the paper's order — how much storage the Fig. 14 mapping saves.
pub fn accumulator_saving(g: &ConvGeometry, cfg: &AcceleratorConfig) -> f64 {
    let paper = analyze_conv(g, LoopOrder::OutputChannelOuter, cfg);
    let alt = analyze_conv(g, LoopOrder::OutputChannelInner, cfg);
    alt.peak_accumulator_entries as f64 / paper.peak_accumulator_entries as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsacc_capsnet::CapsNetConfig;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::paper()
    }

    #[test]
    fn paper_order_minimizes_accumulator_for_every_layer() {
        let net = CapsNetConfig::mnist();
        for g in [net.conv1_geometry(), net.primary_caps_geometry()] {
            let paper = analyze_conv(&g, LoopOrder::OutputChannelOuter, &cfg());
            let alt = analyze_conv(&g, LoopOrder::OutputChannelInner, &cfg());
            assert!(paper.peak_accumulator_entries <= alt.peak_accumulator_entries);
        }
    }

    #[test]
    fn primarycaps_saving_is_the_channel_tile_count() {
        // PrimaryCaps: 256 output channels on 16 columns → 16 tiles; the
        // paper's order holds 36 partials instead of 576 per column.
        let g = CapsNetConfig::mnist().primary_caps_geometry();
        let paper = analyze_conv(&g, LoopOrder::OutputChannelOuter, &cfg());
        let alt = analyze_conv(&g, LoopOrder::OutputChannelInner, &cfg());
        assert_eq!(paper.peak_accumulator_entries, 36);
        assert_eq!(alt.peak_accumulator_entries, 576);
        assert_eq!(accumulator_saving(&g, &cfg()), 16.0);
    }

    #[test]
    fn conv1_saving() {
        let g = CapsNetConfig::mnist().conv1_geometry();
        // 400 pixels per channel tile; 16 channel tiles.
        let paper = analyze_conv(&g, LoopOrder::OutputChannelOuter, &cfg());
        assert_eq!(paper.peak_accumulator_entries, 400);
        assert_eq!(accumulator_saving(&g, &cfg()), 16.0);
    }

    #[test]
    fn loads_are_order_independent_with_resident_weights() {
        let g = CapsNetConfig::mnist().primary_caps_geometry();
        let a = analyze_conv(&g, LoopOrder::OutputChannelOuter, &cfg());
        let b = analyze_conv(&g, LoopOrder::OutputChannelInner, &cfg());
        assert_eq!(a.weight_tile_loads, b.weight_tile_loads);
        assert_eq!(a.weight_tile_loads, (20_736 / 16 * 16) as u64);
    }

    #[test]
    fn accumulator_bytes_scale_with_columns() {
        let g = CapsNetConfig::mnist().conv1_geometry();
        let a = analyze_conv(&g, LoopOrder::OutputChannelOuter, &cfg());
        assert_eq!(a.accumulator_bytes, 400 * 4 * 16);
        let mut half = cfg();
        half.cols = 8;
        let b = analyze_conv(&g, LoopOrder::OutputChannelOuter, &half);
        assert_eq!(b.accumulator_bytes, 400 * 4 * 8);
    }

    #[test]
    fn degenerate_single_tile_has_no_saving() {
        // When out_ch fits one tile, the orders coincide.
        let g = ConvGeometry::new(1, 6, 6, 8, 3, 3, 1);
        assert_eq!(accumulator_saving(&g, &cfg()), 1.0);
    }
}
