//! Host compute kernels of the `Functional` backend: the row-level
//! inner loops `engine::Accelerator::matmul_batch_functional` dispatches
//! to, in scalar and explicit-SIMD (AVX2) form.
//!
//! This module is pure host-speed machinery. Every kernel evaluates the
//! **same** function — the ticked array's saturating fold per output
//! element — so kernel choice, SIMD width, and row partitioning can
//! never change simulated results (outputs, saturation events, cycles,
//! traffic). The exactness argument lives on
//! `matmul_batch_functional`; the pieces the kernels rely on:
//!
//! - For tiles of `kt ≤ EXACT_FOLD_MAX_KT` rows the in-tile fold
//!   provably never clips, so it equals the exact `i32` dot product and
//!   is order-free — dense, zero-skipping, scalar, and vector
//!   evaluations are all bit-identical.
//! - K-tile folding saturates per tile boundary. Starting from `acc =
//!   0`, the first fold's raw value is `0 + psum = psum`, which is what
//!   `AccumulatorUnit::push_new` stores (its clamp provably never
//!   engages on an in-range psum) — so one uniform fold step per tile
//!   suffices, with no first-tile special case.
//! - The fold fits `i32`: `|acc| ≤ 2^24` after the clamp and
//!   `|psum| < 2^24` by the tile-height bound, so `acc + psum` is
//!   within `±2^25 < i32::MAX` and the SIMD path can clamp in 32-bit
//!   lanes. A unit test below pins this against
//!   [`AccumulatorUnit::fold_step`].
//! - Tiles taller than the bound take [`RowKernel::MacSerial`]: the
//!   literal per-step [`Pe::mac_step`] chain, `Pe` staying the single
//!   shared MAC definition.
//!
//! Threading (driven by the engine) partitions *rows*; each row's
//! entire fold chain runs on one thread in tile order, so the per-element
//! saturating-fold order is byte-identical to the serial path.

use crate::accumulator::AccumulatorUnit;
use crate::config::{FunctionalOptions, KernelSelect, SimdMode};
use crate::pe::Pe;

/// Tallest tile whose in-tile fold provably cannot clip:
/// `kt · 128² ≤ 2^24 − 1`.
pub(crate) const EXACT_FOLD_MAX_KT: usize = ((1 << 24) - 1) / (128 * 128);

/// Lane count of the fixed-width kernels — the paper's column count, so
/// the 16×16 design point takes the register path.
pub(crate) const LANES: usize = 16;

/// Data rows folded together by the dense scalar kernel (reuses each
/// staged weight row across the block).
const ROW_BLOCK: usize = 4;

/// Below this many multiply-accumulates per N-tile, `threads: 0` (auto)
/// stays serial: spawn cost would dominate (the FC and routing layers
/// issue thousands of sub-millisecond matmuls).
const AUTO_MIN_MACS: u128 = 1 << 23;

/// The row-level kernel chosen for one staged K-tile.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub(crate) enum RowKernel {
    /// AVX2 `pmaddwd` over pair-interleaved weights, every element.
    DenseSimd,
    /// AVX2 `pmaddwd`, skipping data pairs that are both zero.
    SkipSimd,
    /// Fixed 16-lane scalar, register-blocked over [`ROW_BLOCK`] rows.
    DenseScalar,
    /// Fixed 16-lane scalar, skipping zero data elements.
    SkipScalar,
    /// Dynamic-width scalar (arrays with `cols ≠ 16`); always
    /// zero-skips.
    DynScalar,
    /// Literal per-step [`Pe::mac_step`] saturating chain — the only
    /// correct evaluation once a tile is tall enough to clip in-tile.
    MacSerial,
}

impl RowKernel {
    /// Fixed 16-lane kernels that keep the row's accumulators in
    /// registers across every K-tile.
    fn is_fixed(self) -> bool {
        !matches!(self, RowKernel::DynScalar | RowKernel::MacSerial)
    }

    /// Kernels evaluated with AVX2 intrinsics.
    fn is_simd(self) -> bool {
        matches!(self, RowKernel::DenseSimd | RowKernel::SkipSimd)
    }

    /// Kernels that skip zero data elements (a speed choice only:
    /// `saturate(x + 0) = x`, so skipping is exact).
    fn skips_zeros(self) -> bool {
        matches!(
            self,
            RowKernel::SkipSimd | RowKernel::SkipScalar | RowKernel::DynScalar
        )
    }
}

/// One 32-byte-aligned vector register's worth of interleaved weights
/// (eight `[w_even, w_odd]` column pairs). The alignment lets the SIMD
/// kernel use aligned loads that never split cache lines.
#[repr(align(32))]
#[derive(Copy, Clone, Default)]
pub(crate) struct WVec(pub [i16; 16]);

/// One staged weight K-tile of the current N-tile, with its chosen
/// kernel and (for SIMD kernels) the pair-interleaved `i16` copy
/// `pmaddwd` consumes.
pub(crate) struct KTile {
    /// First K index covered by the tile.
    pub k0: usize,
    /// Tile height (`≤ cfg.rows`).
    pub kt: usize,
    /// Row-major `kt × nt` weights, exactly as the ticked array loads
    /// them.
    pub w: Vec<i8>,
    /// Pair-interleaved widened weights for `pmaddwd`, two aligned
    /// vectors per row pair `p`: vector `2p + h` holds columns
    /// `8h .. 8h + 8` as lanes `[w[2p][c], w[2p+1][c]]` (zero-padded
    /// when `kt` is odd). Empty for non-SIMD kernels.
    pub w_inter: Vec<WVec>,
    /// Row kernel evaluating this tile.
    pub kernel: RowKernel,
}

impl KTile {
    /// Stages one K-tile: picks the kernel for `(kt, nt)` under the
    /// host options and builds the interleaved copy if the SIMD path
    /// will consume it. `sparse_data` is the matmul-wide panel
    /// heuristic (`KernelSelect::Auto` honors it; forcing overrides
    /// it — bit-identical either way, a speed choice only).
    pub(crate) fn stage(
        k0: usize,
        kt: usize,
        nt: usize,
        w: Vec<i8>,
        sparse_data: bool,
        opts: FunctionalOptions,
        simd_ok: bool,
    ) -> Self {
        debug_assert_eq!(w.len(), kt * nt);
        let kernel = if kt > EXACT_FOLD_MAX_KT {
            RowKernel::MacSerial
        } else if nt != LANES {
            RowKernel::DynScalar
        } else {
            let skip = match opts.kernel {
                KernelSelect::Auto => sparse_data,
                KernelSelect::ForceDense => false,
                KernelSelect::ForceZeroSkip => true,
            };
            match (skip, simd_ok) {
                (false, false) => RowKernel::DenseScalar,
                (false, true) => RowKernel::DenseSimd,
                (true, false) => RowKernel::SkipScalar,
                (true, true) => RowKernel::SkipSimd,
            }
        };
        let w_inter = if kernel.is_simd() {
            let pairs = kt.div_ceil(2);
            let mut inter = vec![WVec::default(); pairs * 2];
            for p in 0..pairs {
                for c in 0..LANES {
                    let lane = &mut inter[p * 2 + c / 8].0;
                    lane[2 * (c % 8)] = w[2 * p * LANES + c] as i16;
                    if 2 * p + 1 < kt {
                        lane[2 * (c % 8) + 1] = w[(2 * p + 1) * LANES + c] as i16;
                    }
                }
            }
            inter
        } else {
            Vec::new()
        };
        KTile {
            k0,
            kt,
            w,
            w_inter,
            kernel,
        }
    }
}

/// Whether the AVX2 kernels may be selected under `opts`: `SimdMode::
/// Auto` plus a runtime `avx2` detection (scalar fallback everywhere
/// else — non-x86_64 targets, feature-less hosts, `SimdMode::Scalar`).
pub(crate) fn simd_enabled(opts: FunctionalOptions) -> bool {
    opts.simd == SimdMode::Auto && simd_available()
}

/// Runtime check for the vector ISA the SIMD kernels target.
#[cfg(target_arch = "x86_64")]
pub(crate) fn simd_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

/// Non-x86_64 builds always take the scalar kernels.
#[cfg(not(target_arch = "x86_64"))]
pub(crate) fn simd_available() -> bool {
    false
}

/// Worker-thread count for one N-tile's row sweep. `requested` follows
/// [`FunctionalOptions::threads`]: `0` goes parallel only when the
/// tile grid is big enough to amortize spawn cost (so the thousands of
/// tiny FC/routing matmuls stay serial); an explicit `n ≥ 2` *always*
/// splits — capped by the row count — so tests can exercise the
/// parallel path on arbitrarily small shapes.
pub(crate) fn effective_threads(requested: usize, total_rows: usize, k: usize, nt: usize) -> usize {
    if total_rows <= 1 {
        return 1;
    }
    match requested {
        0 => {
            let macs = total_rows as u128 * k as u128 * nt as u128;
            if macs < AUTO_MIN_MACS {
                1
            } else {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
                    .min(total_rows)
            }
        }
        1 => 1,
        t => t.min(total_rows),
    }
}

/// The saturating K-tile fold step shared by every scalar kernel:
/// `raw = acc + psum`, clamp to 25 bits, count a clip event. With
/// `acc` starting at 0 the first tile's raw value is the tile psum
/// itself — `push_new` semantics.
#[inline]
fn fold_scalar(acc: &mut i64, psum: i64, events: &mut u64) {
    let (sat, clipped) = AccumulatorUnit::fold_step(*acc + psum);
    *events += u64::from(clipped);
    *acc = sat;
}

/// Processes rows `ri0 .. ri0 + nrows` (global panel indices) of one
/// N-tile through every staged K-tile in tile order, writing final
/// 25-bit accumulator values to `acc` (`nrows × nt`, pre-zeroed) and
/// per-row clip-event counts to `row_events` (`nrows`).
///
/// This is the unit the engine partitions across threads: rows are
/// independent, each row's fold chain runs here in full, so the
/// per-element fold order — and therefore every simulated result — is
/// identical for any partition.
#[allow(clippy::too_many_arguments)]
pub(crate) fn process_rows(
    k: usize,
    nt: usize,
    tiles: &[KTile],
    panel: &[i8],
    panel_wide: &[i16],
    ri0: usize,
    nrows: usize,
    acc: &mut [i64],
    row_events: &mut [u64],
) {
    debug_assert_eq!(acc.len(), nrows * nt);
    debug_assert_eq!(row_events.len(), nrows);
    let _ = panel_wide; // consumed only by the x86_64 SIMD dispatch
    let all_fixed = nt == LANES && tiles.iter().all(|t| t.kernel.is_fixed());
    #[cfg(target_arch = "x86_64")]
    if all_fixed
        && tiles.iter().any(|t| t.kernel.is_simd())
        && avx2::sweep_rows(k, tiles, panel_wide, ri0, nrows, acc, row_events)
    {
        return;
    }
    if all_fixed {
        rows_fixed_scalar(k, tiles, panel, ri0, nrows, acc, row_events);
        return;
    }
    let mut scratch = vec![0i32; nt];
    for r in 0..nrows {
        let row = &panel[(ri0 + r) * k..(ri0 + r) * k + k];
        row_events[r] = row_general(nt, tiles, row, &mut acc[r * nt..(r + 1) * nt], &mut scratch);
    }
}

/// Fixed 16-lane scalar sweep. When every tile is dense, rows go
/// through in blocks of [`ROW_BLOCK`] so each staged weight row is
/// reused across the block; remainder rows (and all rows of skipping
/// tiles) take the single-row kernel — bit-identical either way, since
/// the in-tile dot product is exact.
fn rows_fixed_scalar(
    k: usize,
    tiles: &[KTile],
    panel: &[i8],
    ri0: usize,
    nrows: usize,
    acc: &mut [i64],
    row_events: &mut [u64],
) {
    let all_dense = tiles.iter().all(|t| !t.kernel.skips_zeros());
    let mut r = 0;
    while all_dense && r + ROW_BLOCK <= nrows {
        let mut accs = [[0i64; LANES]; ROW_BLOCK];
        let mut evs = [0u64; ROW_BLOCK];
        for t in tiles {
            let mut lanes = [[0i32; LANES]; ROW_BLOCK];
            for (row_idx, wrow) in t.w.chunks_exact(LANES).enumerate() {
                for (j, lane) in lanes.iter_mut().enumerate() {
                    let d = panel[(ri0 + r + j) * k + t.k0 + row_idx] as i32;
                    for (p, &w) in lane.iter_mut().zip(wrow) {
                        *p += d * w as i32;
                    }
                }
            }
            for (j, lane) in lanes.iter().enumerate() {
                for (c, &p) in lane.iter().enumerate() {
                    fold_scalar(&mut accs[j][c], i64::from(p), &mut evs[j]);
                }
            }
        }
        for j in 0..ROW_BLOCK {
            acc[(r + j) * LANES..(r + j + 1) * LANES].copy_from_slice(&accs[j]);
            row_events[r + j] = evs[j];
        }
        r += ROW_BLOCK;
    }
    while r < nrows {
        let row = &panel[(ri0 + r) * k..(ri0 + r) * k + k];
        let mut accs = [0i64; LANES];
        let mut ev = 0u64;
        for t in tiles {
            let drow = &row[t.k0..t.k0 + t.kt];
            let mut lane = [0i32; LANES];
            for (&d, wrow) in drow.iter().zip(t.w.chunks_exact(LANES)) {
                if d != 0 {
                    for (p, &w) in lane.iter_mut().zip(wrow) {
                        *p += d as i32 * w as i32;
                    }
                }
            }
            for (c, &p) in lane.iter().enumerate() {
                fold_scalar(&mut accs[c], i64::from(p), &mut ev);
            }
        }
        acc[r * LANES..(r + 1) * LANES].copy_from_slice(&accs);
        row_events[r] = ev;
        r += 1;
    }
}

/// General one-row path: dynamic widths ([`RowKernel::DynScalar`]) and
/// tall tiles ([`RowKernel::MacSerial`]), plus any fixed-width tile
/// that shares an N-tile with them (evaluated by the exact skip loop —
/// bit-identical to its fixed kernel). Accumulators live in the `acc`
/// slice; `scratch` holds one tile's psums.
fn row_general(
    nt: usize,
    tiles: &[KTile],
    row: &[i8],
    acc: &mut [i64],
    scratch: &mut [i32],
) -> u64 {
    let mut ev = 0u64;
    for t in tiles {
        let drow = &row[t.k0..t.k0 + t.kt];
        if t.kernel == RowKernel::MacSerial {
            // Tall tile: the in-tile fold may clip, so run the literal
            // ticked chain — `Pe::mac_step` per element, north→south.
            for (c, a) in acc.iter_mut().enumerate() {
                let mut psum = 0i64;
                for (r, &d) in drow.iter().enumerate() {
                    let w = t.w[r * nt + c];
                    if d != 0 && w != 0 {
                        psum = Pe::mac_step(psum, d, w);
                    }
                }
                fold_scalar(a, psum, &mut ev);
            }
        } else {
            let psums = &mut scratch[..nt];
            psums.fill(0);
            for (&d, wrow) in drow.iter().zip(t.w.chunks_exact(nt)) {
                if d != 0 {
                    for (p, &w) in psums.iter_mut().zip(wrow) {
                        *p += d as i32 * w as i32;
                    }
                }
            }
            for (a, &p) in acc.iter_mut().zip(psums.iter()) {
                fold_scalar(a, i64::from(p), &mut ev);
            }
        }
    }
    ev
}

/// The AVX2 kernels: `pmaddwd` over pair-interleaved `i16` weights
/// against a broadcast data pair, 16 output columns in two `__m256i`
/// registers, with the K-tile saturating fold done in 32-bit lanes
/// (clamp to ±2^24 via min/max — exact by the `i32` bound above).
/// The only module in the crate allowed to use `unsafe`, and only for
/// the feature-gated intrinsics.
#[cfg(target_arch = "x86_64")]
// lint:allow(unsafe-containment, the crate-level deny is re-allowed only here: runtime-feature-gated SIMD intrinsics with SAFETY-commented call sites)
#[allow(unsafe_code)]
mod avx2 {
    use super::{KTile, WVec, LANES};
    use std::arch::x86_64::{
        __m256i, _mm256_add_epi32, _mm256_cmpeq_epi32, _mm256_load_si256, _mm256_loadu_si256,
        _mm256_madd_epi16, _mm256_max_epi32, _mm256_min_epi32, _mm256_set1_epi32,
        _mm256_setzero_si256, _mm256_storeu_si256, _mm512_add_epi32, _mm512_cmpneq_epi32_mask,
        _mm512_dpwssd_epi32, _mm512_loadu_si512, _mm512_mask_add_epi32, _mm512_max_epi32,
        _mm512_min_epi32, _mm512_set1_epi32, _mm512_setzero_si512, _mm512_storeu_si512,
    };

    /// 25-bit clamp bounds in every 32-bit lane.
    const SAT_MAX: i32 = (1 << 24) - 1;
    const SAT_MIN: i32 = -(1 << 24);

    /// Data rows the dense kernel folds per weight-vector load. Four
    /// rows use 8 accumulator registers + 2 weight registers and cut
    /// weight-load traffic 4×, turning the sweep from load-port-bound
    /// into `pmaddwd`-throughput-bound.
    const SIMD_ROW_BLOCK: usize = 4;

    /// Safe entry point: sweeps rows `ri0 .. ri0 + nrows` through the
    /// AVX2 kernels, returning `false` without touching anything if
    /// the host lacks `avx2` or the widened panel is absent (the
    /// caller then takes the scalar path — selection normally prevents
    /// this, but the fallback keeps the dispatch total).
    ///
    /// `panel_wide` is the sign-extended `i16` copy of the data panel:
    /// each adjacent element pair is then one little-endian `i32`, so
    /// the kernel broadcasts a data pair with a single memory-operand
    /// `vpbroadcastd` instead of a scalar widen/shift/or chain.
    ///
    /// The sweep is K-tile–outer so one staged tile (≤ 8 KiB
    /// interleaved) stays cache-resident while every row streams
    /// against it; per-(row, column) accumulators and clip-event
    /// counts live in `i32` lane buffers and are folded in place at
    /// each tile — the fold order per element is still tile-ascending,
    /// identical to the serial chain.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn sweep_rows(
        k: usize,
        tiles: &[KTile],
        panel_wide: &[i16],
        ri0: usize,
        nrows: usize,
        acc: &mut [i64],
        row_events: &mut [u64],
    ) -> bool {
        if panel_wide.is_empty() && k > 0 {
            return false;
        }
        if !std::arch::is_x86_feature_detected!("avx2") {
            return false;
        }
        let mut acc32 = vec![0i32; nrows * LANES];
        let mut ev32 = vec![0i32; nrows * LANES];
        // All-dense matmuls on an AVX-512 + VNNI host take the zmm
        // sweep: one register holds a full 16-column row, `vpdpwssd`
        // fuses multiply and accumulate, and the 32-register file keeps
        // a 4-row block's accumulators, psums and event counts resident
        // across every K-tile — the per-tile fold never touches memory.
        // Same fold per element in the same tile order: bit-identical.
        if tiles.iter().all(|t| !t.kernel.skips_zeros()) && avx512_available() {
            // SAFETY: the `avx512*`/`avx512vnni` features were
            // runtime-detected just above.
            unsafe { sweep_dense_512(k, tiles, panel_wide, ri0, nrows, &mut acc32, &mut ev32) };
        } else {
            for t in tiles {
                // SAFETY: `avx2` was runtime-detected just above.
                unsafe { tile_sweep(t, panel_wide, k, ri0, nrows, &mut acc32, &mut ev32) };
            }
        }
        for r in 0..nrows {
            let lanes = &acc32[r * LANES..(r + 1) * LANES];
            for (a, &v) in acc[r * LANES..(r + 1) * LANES].iter_mut().zip(lanes) {
                *a = i64::from(v);
            }
            row_events[r] = ev32[r * LANES..(r + 1) * LANES]
                .iter()
                .map(|&e| u64::try_from(e).expect("clip-event lane count is non-negative"))
                .sum();
        }
        true
    }

    /// Streams every row's slice of one K-tile against the resident
    /// interleaved weights and folds the finished psums into the
    /// `i32` accumulator/event lane buffers (saturating fold in 32-bit
    /// lanes: raw = acc + psum is in range by the ±2^25 bound; clamp;
    /// `cmpeq + 1` is the per-lane clip indicator).
    ///
    /// Runtime check for the zmm dense-sweep profile: foundation ops
    /// (`avx512f`), zmm `i16` lanes (`avx512bw`), and the fused
    /// multiply-accumulate `vpdpwssd` (`avx512vnni`).
    fn avx512_available() -> bool {
        std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512bw")
            && std::arch::is_x86_feature_detected!("avx512vnni")
    }

    /// Dense zmm sweep over all rows and every K-tile: rows go in
    /// blocks of [`SIMD_ROW_BLOCK`] (remainder rows one at a time),
    /// tile-inner, with each row's 16 `i32` accumulator lanes, tile
    /// psums and clip-event counts held in zmm registers across the
    /// whole fold chain. Each pair of interleaved weight rows (two
    /// adjacent [`WVec`]s) is one 64-byte `vpdpwssd` operand whose
    /// `i32` lanes are exactly the 16 output columns.
    ///
    /// Writes (not accumulates) each row's final lanes into
    /// `acc32`/`ev32` — this path owns the complete fold.
    ///
    /// # Safety
    ///
    /// Caller must have runtime-verified [`avx512_available`].
    #[target_feature(enable = "avx512f,avx512bw,avx512vnni")]
    unsafe fn sweep_dense_512(
        k: usize,
        tiles: &[KTile],
        panel_wide: &[i16],
        ri0: usize,
        nrows: usize,
        acc32: &mut [i32],
        ev32: &mut [i32],
    ) {
        let vmax = _mm512_set1_epi32(SAT_MAX);
        let vmin = _mm512_set1_epi32(SAT_MIN);
        let ones = _mm512_set1_epi32(1);
        let zero = _mm512_setzero_si512();
        let mut r = 0;
        while r + SIMD_ROW_BLOCK <= nrows {
            let mut acc = [zero; SIMD_ROW_BLOCK];
            let mut ev = [zero; SIMD_ROW_BLOCK];
            for t in tiles {
                let base = (ri0 + r) * k + t.k0;
                let blk = &panel_wide[base..base + (SIMD_ROW_BLOCK - 1) * k + t.kt];
                let wide = blk.as_ptr();
                let inter: *const i16 = t.w_inter.as_ptr().cast();
                let mut psum = [zero; SIMD_ROW_BLOCK];
                let full = t.kt / 2;
                for p in 0..full {
                    let w = _mm512_loadu_si512(inter.add(p * 32).cast());
                    for (j, ps) in psum.iter_mut().enumerate() {
                        let dd = _mm512_set1_epi32(data_pair(wide.add(j * k), p));
                        *ps = _mm512_dpwssd_epi32(*ps, dd, w);
                    }
                }
                if t.kt % 2 == 1 {
                    // Odd tail row: zero-padded partner weights, and
                    // only `d0` is read (the partner slot may be past
                    // the row).
                    let w = _mm512_loadu_si512(inter.add(full * 32).cast());
                    for (j, ps) in psum.iter_mut().enumerate() {
                        let d0 = *wide.add(j * k + t.kt - 1);
                        let dd = _mm512_set1_epi32(d0 as u16 as i32);
                        *ps = _mm512_dpwssd_epi32(*ps, dd, w);
                    }
                }
                for j in 0..SIMD_ROW_BLOCK {
                    let raw = _mm512_add_epi32(acc[j], psum[j]);
                    let sat = _mm512_max_epi32(_mm512_min_epi32(raw, vmax), vmin);
                    let clipped = _mm512_cmpneq_epi32_mask(raw, sat);
                    ev[j] = _mm512_mask_add_epi32(ev[j], clipped, ev[j], ones);
                    acc[j] = sat;
                }
            }
            for j in 0..SIMD_ROW_BLOCK {
                _mm512_storeu_si512(acc32.as_mut_ptr().add((r + j) * LANES).cast(), acc[j]);
                _mm512_storeu_si512(ev32.as_mut_ptr().add((r + j) * LANES).cast(), ev[j]);
            }
            r += SIMD_ROW_BLOCK;
        }
        while r < nrows {
            let mut acc = zero;
            let mut ev = zero;
            for t in tiles {
                let base = (ri0 + r) * k + t.k0;
                let drow = &panel_wide[base..base + t.kt];
                let wide = drow.as_ptr();
                let inter: *const i16 = t.w_inter.as_ptr().cast();
                let mut psum = zero;
                let full = t.kt / 2;
                for p in 0..full {
                    let w = _mm512_loadu_si512(inter.add(p * 32).cast());
                    let dd = _mm512_set1_epi32(data_pair(wide, p));
                    psum = _mm512_dpwssd_epi32(psum, dd, w);
                }
                if t.kt % 2 == 1 {
                    let w = _mm512_loadu_si512(inter.add(full * 32).cast());
                    let dd = _mm512_set1_epi32(drow[t.kt - 1] as u16 as i32);
                    psum = _mm512_dpwssd_epi32(psum, dd, w);
                }
                let raw = _mm512_add_epi32(acc, psum);
                let sat = _mm512_max_epi32(_mm512_min_epi32(raw, vmax), vmin);
                let clipped = _mm512_cmpneq_epi32_mask(raw, sat);
                ev = _mm512_mask_add_epi32(ev, clipped, ev, ones);
                acc = sat;
            }
            _mm512_storeu_si512(acc32.as_mut_ptr().add(r * LANES).cast(), acc);
            _mm512_storeu_si512(ev32.as_mut_ptr().add(r * LANES).cast(), ev);
            r += 1;
        }
    }

    /// # Safety
    ///
    /// Caller must have runtime-verified `avx2`.
    #[target_feature(enable = "avx2")]
    unsafe fn tile_sweep(
        t: &KTile,
        panel_wide: &[i16],
        k: usize,
        ri0: usize,
        nrows: usize,
        acc32: &mut [i32],
        ev32: &mut [i32],
    ) {
        let vmax = _mm256_set1_epi32(SAT_MAX);
        let vmin = _mm256_set1_epi32(SAT_MIN);
        let ones = _mm256_set1_epi32(1);
        let skip = t.kernel.skips_zeros();
        let mut r = 0;
        // Dense rows go through in blocks of [`SIMD_ROW_BLOCK`]: each
        // 32-byte weight vector is loaded once per block instead of
        // once per row, which is what the single-row loop is
        // throughput-bound on (3 loads per pair-step against a
        // 2-load/cycle port limit). Chain assignment differs from the
        // single-row kernel but the in-tile `i32` dot product is
        // order-free, so the psums are bit-identical.
        if !skip {
            while r + SIMD_ROW_BLOCK <= nrows {
                let base = (ri0 + r) * k + t.k0;
                let blk = &panel_wide[base..base + (SIMD_ROW_BLOCK - 1) * k + t.kt];
                let psums = tile_psums_block(t, blk.as_ptr(), k);
                for (j, &(psum0, psum1)) in psums.iter().enumerate() {
                    fold_row(acc32, ev32, r + j, psum0, psum1, vmax, vmin, ones);
                }
                r += SIMD_ROW_BLOCK;
            }
        }
        while r < nrows {
            let base = (ri0 + r) * k + t.k0;
            let drow = &panel_wide[base..base + t.kt];
            let (psum0, psum1) = if skip {
                tile_psums::<true>(t, drow)
            } else {
                tile_psums::<false>(t, drow)
            };
            fold_row(acc32, ev32, r, psum0, psum1, vmax, vmin, ones);
            r += 1;
        }
    }

    /// Folds one row's finished tile psums into its `i32`
    /// accumulator/event lanes (saturating fold in 32-bit lanes:
    /// raw = acc + psum is in range by the ±2^25 bound; clamp;
    /// `cmpeq + 1` is the per-lane clip indicator).
    ///
    /// # Safety
    ///
    /// Caller must have runtime-verified `avx2`; row `r` must be in
    /// bounds of both lane buffers.
    #[target_feature(enable = "avx2")]
    #[inline]
    #[allow(clippy::too_many_arguments)]
    unsafe fn fold_row(
        acc32: &mut [i32],
        ev32: &mut [i32],
        r: usize,
        psum0: __m256i,
        psum1: __m256i,
        vmax: __m256i,
        vmin: __m256i,
        ones: __m256i,
    ) {
        let accp: *mut i32 = acc32.as_mut_ptr().add(r * LANES);
        let evp: *mut i32 = ev32.as_mut_ptr().add(r * LANES);
        let raw0 = _mm256_add_epi32(_mm256_loadu_si256(accp.cast()), psum0);
        let raw1 = _mm256_add_epi32(_mm256_loadu_si256(accp.add(8).cast()), psum1);
        let sat0 = _mm256_max_epi32(_mm256_min_epi32(raw0, vmax), vmin);
        let sat1 = _mm256_max_epi32(_mm256_min_epi32(raw1, vmax), vmin);
        _mm256_storeu_si256(accp.cast(), sat0);
        _mm256_storeu_si256(accp.add(8).cast(), sat1);
        let e0 = _mm256_add_epi32(
            _mm256_loadu_si256(evp.cast()),
            _mm256_add_epi32(_mm256_cmpeq_epi32(raw0, sat0), ones),
        );
        let e1 = _mm256_add_epi32(
            _mm256_loadu_si256(evp.add(8).cast()),
            _mm256_add_epi32(_mm256_cmpeq_epi32(raw1, sat1), ones),
        );
        _mm256_storeu_si256(evp.cast(), e0);
        _mm256_storeu_si256(evp.add(8).cast(), e1);
    }

    /// One accumulation step of [`tile_psums`]: `pmaddwd` of the
    /// broadcast widened data pair (`[d0, d1]` as one `i32`, a single
    /// memory-operand `vpbroadcastd`) against interleaved weight
    /// pair-row `p`, added into one of the chains.
    ///
    /// # Safety
    ///
    /// Caller must have runtime-verified `avx2`; `inter` must be valid
    /// for aligned reads through interleaved vectors `2p` and `2p + 1`.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn pair_step(inter: *const WVec, p: usize, dd: i32, acc: &mut (__m256i, __m256i)) {
        let dd = _mm256_set1_epi32(dd);
        let w0 = _mm256_load_si256(inter.add(2 * p).cast());
        let w1 = _mm256_load_si256(inter.add(2 * p + 1).cast());
        acc.0 = _mm256_add_epi32(acc.0, _mm256_madd_epi16(dd, w0));
        acc.1 = _mm256_add_epi32(acc.1, _mm256_madd_epi16(dd, w1));
    }

    /// Reads widened data pair `p` of the tile as one little-endian
    /// `i32` (lanes `[d0, d1]` — exactly the `vpbroadcastd` operand).
    ///
    /// # Safety
    ///
    /// `2p + 1` must be in bounds of `wide`.
    #[inline]
    unsafe fn data_pair(wide: *const i16, p: usize) -> i32 {
        wide.add(2 * p).cast::<i32>().read_unaligned()
    }

    /// One tile's exact dot products for [`SIMD_ROW_BLOCK`] dense rows
    /// at once: the pair loop loads each interleaved weight vector
    /// once and `pmaddwd`s it against every row's broadcast data pair.
    /// `wide` points at the first row's tile slice; consecutive rows
    /// are `stride` elements apart (the panel's K dimension).
    ///
    /// # Safety
    ///
    /// Caller must have runtime-verified `avx2`; `wide` must be valid
    /// for reads through `(SIMD_ROW_BLOCK - 1) * stride + t.kt`
    /// elements.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn tile_psums_block(
        t: &KTile,
        wide: *const i16,
        stride: usize,
    ) -> [(__m256i, __m256i); SIMD_ROW_BLOCK] {
        let zero = _mm256_setzero_si256();
        let mut accs = [(zero, zero); SIMD_ROW_BLOCK];
        let full = t.kt / 2;
        let inter = t.w_inter.as_ptr();
        for p in 0..full {
            let w0 = _mm256_load_si256(inter.add(2 * p).cast());
            let w1 = _mm256_load_si256(inter.add(2 * p + 1).cast());
            for (j, a) in accs.iter_mut().enumerate() {
                let dd = _mm256_set1_epi32(data_pair(wide.add(j * stride), p));
                a.0 = _mm256_add_epi32(a.0, _mm256_madd_epi16(dd, w0));
                a.1 = _mm256_add_epi32(a.1, _mm256_madd_epi16(dd, w1));
            }
        }
        if t.kt % 2 == 1 {
            // Odd tail row: zero-padded partner weights, and only `d0`
            // is read (the partner slot may be past the row).
            let w0 = _mm256_load_si256(inter.add(2 * full).cast());
            let w1 = _mm256_load_si256(inter.add(2 * full + 1).cast());
            for (j, a) in accs.iter_mut().enumerate() {
                let d0 = *wide.add(j * stride + t.kt - 1);
                let dd = _mm256_set1_epi32(d0 as u16 as i32);
                a.0 = _mm256_add_epi32(a.0, _mm256_madd_epi16(dd, w0));
                a.1 = _mm256_add_epi32(a.1, _mm256_madd_epi16(dd, w1));
            }
        }
        accs
    }

    /// One tile's exact dot products for all 16 columns: `pmaddwd`
    /// accumulates broadcast data pairs against the interleaved weight
    /// rows, unrolled over four independent accumulator chains so the
    /// loop is throughput-bound instead of serialized on the
    /// `pmaddwd → paddd` latency (the `i32` dot product is order-free,
    /// so chain assignment is exact). The `i32` accumulation cannot
    /// overflow: ≤ 512 pairs × 2·2^14 < 2^31. `SKIP` elides pairs
    /// whose two data elements are both zero — one `i32` compare on
    /// the widened pair (exact: such pairs contribute +0).
    ///
    /// # Safety
    ///
    /// Caller must have runtime-verified `avx2`; `drow` must hold the
    /// row's full widened tile slice (`t.kt` elements).
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn tile_psums<const SKIP: bool>(t: &KTile, drow: &[i16]) -> (__m256i, __m256i) {
        let zero = _mm256_setzero_si256();
        let mut chains = [(zero, zero); 4];
        let full = t.kt / 2;
        let inter = t.w_inter.as_ptr();
        let wide = drow.as_ptr();
        let mut p = 0;
        while p + 4 <= full {
            for (j, chain) in chains.iter_mut().enumerate() {
                let dd = data_pair(wide, p + j);
                if !(SKIP && dd == 0) {
                    pair_step(inter, p + j, dd, chain);
                }
            }
            p += 4;
        }
        while p < full {
            let dd = data_pair(wide, p);
            if !(SKIP && dd == 0) {
                pair_step(inter, p, dd, &mut chains[0]);
            }
            p += 1;
        }
        if t.kt % 2 == 1 {
            // Odd tail row: its pair partner's weights are staged as
            // zero, so only `d0` matters — and only `d0` is read (the
            // partner slot may be past the row).
            let d0 = drow[t.kt - 1];
            if !(SKIP && d0 == 0) {
                pair_step(inter, full, d0 as u16 as i32, &mut chains[1]);
            }
        }
        let p0 = _mm256_add_epi32(
            _mm256_add_epi32(chains[0].0, chains[1].0),
            _mm256_add_epi32(chains[2].0, chains[3].0),
        );
        let p1 = _mm256_add_epi32(
            _mm256_add_epi32(chains[0].1, chains[1].1),
            _mm256_add_epi32(chains[2].1, chains[3].1),
        );
        (p0, p1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 32-bit clamp the SIMD fold uses must agree with the
    /// accumulator's shared `fold_step` on and around the clip
    /// boundary.
    #[test]
    fn i32_clamp_fold_matches_fold_step() {
        let clamp32 = |raw: i32| raw.clamp(-(1 << 24), (1 << 24) - 1);
        for acc in [
            -(1i64 << 24),
            -(1 << 24) + 1,
            -1,
            0,
            1,
            (1 << 24) - 2,
            (1 << 24) - 1,
        ] {
            for psum in [-1023i64 * 16384, -16384, -1, 0, 1, 16384, 1023 * 16384] {
                let raw = acc + psum;
                let (sat, clipped) = AccumulatorUnit::fold_step(raw);
                assert_eq!(clamp32(raw as i32) as i64, sat, "acc={acc} psum={psum}");
                assert_eq!(clamp32(raw as i32) as i64 != raw, clipped);
            }
        }
    }

    /// Pair-interleaved staging reads back as `[w[2p][c], w[2p+1][c]]`
    /// with a zeroed partner on the odd tail.
    #[test]
    fn interleaved_weights_pair_rows_per_column() {
        let (kt, nt) = (5, LANES);
        let w: Vec<i8> = (0..kt * nt).map(|i| (i as i8).wrapping_mul(3)).collect();
        let t = KTile::stage(
            0,
            kt,
            nt,
            w.clone(),
            false,
            FunctionalOptions {
                simd: SimdMode::Auto,
                ..FunctionalOptions::default()
            },
            true,
        );
        assert!(t.kernel.is_simd());
        assert_eq!(t.w_inter.len(), 3 * 2);
        assert_eq!(std::mem::align_of::<WVec>(), 32);
        for p in 0..3 {
            for c in 0..LANES {
                let lane = &t.w_inter[p * 2 + c / 8].0;
                assert_eq!(lane[2 * (c % 8)], w[2 * p * LANES + c] as i16);
                let partner = if 2 * p + 1 < kt {
                    w[(2 * p + 1) * LANES + c] as i16
                } else {
                    0
                };
                assert_eq!(lane[2 * (c % 8) + 1], partner);
            }
        }
    }

    /// The AVX2 row kernel agrees element-for-element (values *and*
    /// clip events) with the general scalar path, including folds that
    /// clip at tile boundaries.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_row_matches_scalar_row() {
        if !simd_available() {
            return; // scalar-only host: the fallback is the only path
        }
        let opts_simd = FunctionalOptions::default();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 56) as i8
        };
        // Adversarial shape: tall-ish tiles of ±127 blocks so K-tile
        // folds clip, plus a random tile and an odd-height tail tile.
        let k = 1023 + 1023 + 777 + 5;
        let row: Vec<i8> = (0..k)
            .map(|i| if i < 2046 { 127 } else { next() })
            .collect();
        let mut tiles = Vec::new();
        let mut k0 = 0;
        for kt in [1023usize, 1023, 777, 5] {
            let w: Vec<i8> = (0..kt * LANES)
                .map(|i| {
                    if k0 < 2046 {
                        127
                    } else {
                        next().wrapping_sub(i as i8)
                    }
                })
                .collect();
            tiles.push(KTile::stage(k0, kt, LANES, w, k0 % 2 == 0, opts_simd, true));
            k0 += kt;
        }
        assert!(tiles.iter().all(|t| t.kernel.is_simd()));

        let wide: Vec<i16> = row.iter().map(|&d| d as i16).collect();
        let mut acc_simd = vec![0i64; LANES];
        let mut ev_rows = [0u64; 1];
        assert!(avx2::sweep_rows(
            k,
            &tiles,
            &wide,
            0,
            1,
            &mut acc_simd,
            &mut ev_rows
        ));
        let ev_simd = ev_rows[0];

        let mut acc_ref = vec![0i64; LANES];
        let mut scratch = vec![0i32; LANES];
        let ev_ref = row_general(LANES, &tiles, &row, &mut acc_ref, &mut scratch);

        assert_eq!(acc_simd, acc_ref);
        assert_eq!(ev_simd, ev_ref);
        assert!(ev_simd > 0, "adversarial row must actually clip");
    }

    /// Explicit thread requests always split (min'd with the row
    /// count); auto stays serial under the work threshold.
    #[test]
    fn thread_policy_splits_explicit_requests() {
        assert_eq!(effective_threads(7, 3, 64, 16), 3);
        assert_eq!(effective_threads(2, 100, 4, 4), 2);
        assert_eq!(effective_threads(1, 1_000_000, 1_000, 16), 1);
        assert_eq!(effective_threads(4, 1, 1_000_000, 16), 1);
        assert_eq!(effective_threads(0, 16, 8, 16), 1, "tiny auto stays serial");
    }
}
