//! Batched, weight-resident inference.
//!
//! The paper's second weight register lets one inference reuse resident
//! weights *within* a layer (Fig. 12 "reuse weights"); this module
//! generalizes that residency *across* a batch of inferences, the way
//! multi-user serving traffic arrives. [`BatchScheduler`] reorders the
//! work of `N` images **layer-major**: for every layer, each weight tile
//! is loaded into the array once and all `N` images' data rows stream
//! back-to-back against it, so the whole batch pays for one weight load
//! — `N×` fewer Weight Buffer bytes and `(N−1)` fewer tile-load stalls
//! per tile than `N` sequential [`Accelerator::run_inference`] calls.
//!
//! Functionally nothing changes: per-row arithmetic is untouched, each
//! image keeps its own accumulator FIFOs, and the routing phase (whose
//! "weights" are the per-image predictions `û`, so it has nothing to
//! share across images) runs through the exact code path the sequential
//! engine uses. Every per-image [`QuantTrace`] is therefore **bit-exact**
//! against a fresh-accelerator sequential run of the same image —
//! enforced by `tests/batch_equivalence.rs`.
//!
//! The schedule is backend-agnostic: under
//! [`crate::EngineBackend::Functional`] the same layer-major pass runs
//! at wall-clock speed with identical results and identical cycle,
//! traffic and stall accounting (`tests/backend_equivalence.rs`), which
//! is what makes MNIST-scale engine-backed serving tables practical
//! (`capsacc-serve`).
//!
//! # Example
//!
//! ```
//! use capsacc_core::{AcceleratorConfig, BatchScheduler};
//! use capsacc_capsnet::{CapsNetConfig, CapsNetParams};
//! use capsacc_tensor::Tensor;
//!
//! let net = CapsNetConfig::tiny();
//! let cfg = AcceleratorConfig::test_4x4();
//! let qparams = CapsNetParams::generate(&net, 1).quantize(cfg.numeric);
//! let images: Vec<_> = (0..3)
//!     .map(|s| Tensor::from_fn(&[1, 12, 12], |i| ((i[1] * (s + 2) + i[2]) % 7) as f32 / 7.0))
//!     .collect();
//! let mut sched = BatchScheduler::new(cfg);
//! let run = sched.run(&net, &qparams, &images).expect("valid batch");
//! assert_eq!(run.traces.len(), 3);
//! assert!(run.cycles_per_image() > 0.0);
//! assert_eq!(sched.batches_run(), 1);
//! ```

use std::fmt;

use capsacc_capsnet::{CapsNetConfig, QuantOutput, QuantTrace, QuantizedParams};
use capsacc_memory::MemReport;
use capsacc_tensor::{qops::MacStats, u64_from, Tensor};

use capsacc_telemetry::{CycleKind, SpanDetail};

use crate::activation::ActivationKind;
use crate::config::AcceleratorConfig;
use crate::engine::{to_chw, Accelerator, LayerRun};
use crate::timing::RoutingStep;
use crate::traffic::{MemoryKind, TrafficReport};

/// Error rejected at the batched-inference API boundary.
///
/// A long-lived serving process cannot afford a panic on malformed
/// input: an empty micro-batch or a mis-shaped image is a *request*
/// problem, not a simulator invariant, so [`Accelerator::run_batch`]
/// reports both as values instead of unwinding a worker thread.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BatchError {
    /// The submitted `images` slice was empty. Micro-batchers that close
    /// on a timer can produce this; it must be handled, not panic.
    EmptyBatch,
    /// An image's shape is not the `[1, input_side, input_side]` the
    /// network expects.
    ImageShape {
        /// Index of the offending image in the submitted slice.
        index: usize,
        /// The shape that was submitted.
        got: Vec<usize>,
        /// The shape the network expects.
        want: [usize; 3],
    },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::EmptyBatch => write!(f, "batch contains no images"),
            BatchError::ImageShape { index, got, want } => {
                write!(f, "image {index} has shape {got:?}, expected {want:?}")
            }
        }
    }
}

impl std::error::Error for BatchError {}

/// Result of one batched, cycle-accurate inference pass.
///
/// Per-image functional results ride in [`BatchRun::traces`]; the cycle
/// and traffic accounting is shared, because the whole point of the
/// batch is that the images are *not* independent on the hardware: they
/// split the weight-load bill.
#[derive(Clone, PartialEq, Debug)]
pub struct BatchRun {
    /// One full functional trace per image, in input order — each
    /// bit-exact against a sequential run of that image on a fresh
    /// accelerator (including the per-image `MacStats`).
    pub traces: Vec<QuantTrace>,
    /// Per-layer cycle counts for the whole batch.
    pub layers: Vec<LayerRun>,
    /// ClassCaps step cycles summed over the batch (per-image routing
    /// steps are identical in sequence, so they aggregate elementwise).
    pub steps: Vec<(RoutingStep, u64)>,
    /// Traffic across all memories and buffers for this batch alone
    /// (deltas against the accelerator's counters at batch start, so
    /// per-image metrics stay correct on a reused scheduler).
    pub traffic: TrafficReport,
    /// Memory-hierarchy counters for this batch alone (same delta
    /// scoping as [`BatchRun::traffic`]).
    pub memory: MemReport,
    /// Accumulator-unit saturation events during this batch alone.
    pub accumulator_saturations: u64,
    /// Number of images in the batch.
    pub batch: usize,
}

impl BatchRun {
    /// Total cycles consumed by the batch.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(LayerRun::cycles).sum()
    }

    /// Amortized cycles per image.
    ///
    /// Total: a (hand-constructed) zero-image run reports `0.0`, never
    /// NaN — [`Accelerator::run_batch`] itself refuses empty batches
    /// with [`BatchError::EmptyBatch`].
    pub fn cycles_per_image(&self) -> f64 {
        if self.batch == 0 {
            return 0.0;
        }
        self.total_cycles() as f64 / self.batch as f64
    }

    /// Amortized Weight Buffer read bytes per image — the headline
    /// data-reuse metric: with residency across the batch this shrinks
    /// as the batch grows.
    ///
    /// Total like [`BatchRun::cycles_per_image`]: `0.0` on a zero-image
    /// run, never NaN.
    pub fn weight_buffer_bytes_per_image(&self) -> f64 {
        if self.batch == 0 {
            return 0.0;
        }
        self.traffic.counter(MemoryKind::WeightBuffer).read_bytes as f64 / self.batch as f64
    }
}

/// Runs batches of inferences through one [`Accelerator`], layer-major,
/// so weights loaded for a layer stay resident across all images.
///
/// The scheduler owns the accelerator; the accelerator's *internal*
/// counters accumulate across [`BatchScheduler::run`] calls exactly as
/// a long-lived serving process would accumulate them, while each
/// returned [`BatchRun`] reports only its own batch's traffic and
/// saturation deltas.
#[derive(Debug)]
pub struct BatchScheduler {
    acc: Accelerator,
    batches_run: u64,
    images_run: u64,
}

impl BatchScheduler {
    /// Builds a scheduler around a fresh accelerator instance.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`AcceleratorConfig::validate`].
    pub fn new(cfg: AcceleratorConfig) -> Self {
        Self {
            acc: Accelerator::new(cfg),
            batches_run: 0,
            images_run: 0,
        }
    }

    /// The accelerator driven by this scheduler.
    pub fn accelerator(&self) -> &Accelerator {
        &self.acc
    }

    /// Mutable access to the accelerator — e.g. to
    /// [`Accelerator::enable_telemetry`] on a long-lived scheduler.
    pub fn accelerator_mut(&mut self) -> &mut Accelerator {
        &mut self.acc
    }

    /// Batches served since construction — the uptime view a serving
    /// replica reports. Failed (rejected) batches do not count.
    pub fn batches_run(&self) -> u64 {
        self.batches_run
    }

    /// Images served since construction, across all batches.
    pub fn images_run(&self) -> u64 {
        self.images_run
    }

    /// Consumes the scheduler, returning the long-lived accelerator with
    /// all its cumulative counters — for inspecting a serving replica
    /// after its shard shuts down.
    pub fn into_accelerator(self) -> Accelerator {
        self.acc
    }

    /// Runs one batch. See [`Accelerator::run_batch`].
    ///
    /// # Errors
    ///
    /// Returns [`BatchError`] on an empty batch or a mis-shaped image;
    /// the scheduler state is untouched in that case and the next batch
    /// can proceed.
    pub fn run(
        &mut self,
        net: &CapsNetConfig,
        qparams: &QuantizedParams,
        images: &[Tensor<f32>],
    ) -> Result<BatchRun, BatchError> {
        let run = self.acc.run_batch(net, qparams, images)?;
        self.batches_run += 1;
        self.images_run += u64_from(run.batch);
        Ok(run)
    }
}

// Compile-time Send/Sync audit: the serving shard pool
// (`capsacc-serve`) moves long-lived schedulers onto OS worker threads,
// so the whole engine state must be `Send` (it is plain owned data —
// no interior mutability, no shared handles).
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<Accelerator>();
    assert_send_sync::<BatchScheduler>();
    assert_send_sync::<BatchRun>();
    assert_send_sync::<BatchError>();
};

impl Accelerator {
    /// Runs a batch of CapsuleNet inferences cycle-accurately with the
    /// work reordered layer-major: every weight tile of Conv1,
    /// PrimaryCaps and the ClassCaps FC is loaded once and reused by all
    /// images; the routing phase (per-image operands on both array
    /// ports) runs per image through the sequential code path.
    ///
    /// Each returned trace is bit-exact against
    /// [`Accelerator::run_inference`] of the same image on a fresh
    /// accelerator, including the per-image saturation counts.
    ///
    /// # Errors
    ///
    /// Returns [`BatchError::EmptyBatch`] if `images` is empty and
    /// [`BatchError::ImageShape`] if any image is not
    /// `[1, input_side, input_side]` — both checked up front, before any
    /// counter moves, so a rejected batch leaves the accelerator state
    /// untouched (a long-lived serving worker keeps going).
    pub fn run_batch(
        &mut self,
        net: &CapsNetConfig,
        qparams: &QuantizedParams,
        images: &[Tensor<f32>],
    ) -> Result<BatchRun, BatchError> {
        if images.is_empty() {
            return Err(BatchError::EmptyBatch);
        }
        let want = [1, net.input_side, net.input_side];
        for (index, im) in images.iter().enumerate() {
            if im.shape() != want {
                return Err(BatchError::ImageShape {
                    index,
                    got: im.shape().to_vec(),
                    want,
                });
            }
        }
        let batch = images.len();
        let ncfg = self.cfg.numeric;
        // Validation is done: from here on the batch runs to completion,
        // so the inference root span always closes.
        self.rec
            .begin_arg(SpanDetail::Layers, "inference", "batch", u64_from(batch));
        // Snapshot the accelerator counters so the returned report
        // covers this batch alone even on a reused scheduler.
        let traffic_at_start = self.traffic;
        let memory_at_start = self.memory.report();
        let saturations_at_start = self.accumulator_saturations;
        let mut layers = Vec::new();
        let mut stats = vec![MacStats::default(); batch];

        // ------------------------------------------------- Conv1 + ReLU
        let g1 = net.conv1_geometry();
        let inputs_q: Vec<Tensor<i8>> =
            images.iter().map(|im| qparams.quantize_image(im)).collect();
        // The batch's images arrive over the off-chip channel before the
        // on-chip Data Memory serves them.
        let input_bytes = u64_from(batch * g1.input_len());
        self.traffic.read(MemoryKind::Dram, input_bytes);
        self.traffic.read(MemoryKind::DataMemory, input_bytes);
        self.rec.begin(SpanDetail::Layers, "Conv1");
        let c0 = self.array.cycles();
        let a0 = self.activation_cycles;
        let m0 = self.memory_stall_cycles;
        let stage_stall = if self.rec.is_enabled() {
            self.memory.stage_input_recorded(input_bytes, &mut self.rec)
        } else {
            self.memory.stage_input(input_bytes)
        };
        self.memory_stall_cycles += stage_stall;
        self.rec.begin(SpanDetail::Phases, "stage-input");
        self.rec.advance(CycleKind::MemStall, stage_stall);
        self.rec.end(SpanDetail::Phases);
        // Biases ride along with the layer's off-chip weight stream.
        self.traffic.read(MemoryKind::Dram, u64_from(g1.out_ch));
        self.memory.stage_bias(u64_from(g1.out_ch));
        let inputs_ref = &inputs_q;
        let w1 = &qparams.conv1_w;
        // im2col addressing is affine: `input_index(mi, ki) =
        // patch_origin(mi) + tap_offset(ki)`. Precomputing both halves
        // once per layer keeps the staged panel identical while the
        // data closure becomes two table lookups and an add instead of
        // a six-op div/mod decomposition per element.
        let (g1_origins, g1_taps) = (g1.patch_origins(), g1.tap_offsets());
        let g1_patch_len = g1.patch_len();
        let (conv1_mns, conv1_sats) = self.matmul_batch_inner(
            batch,
            &|img, mi, ki| inputs_ref[img].data()[g1_origins[mi] + g1_taps[ki]],
            &|ki, oc| w1.data()[oc * g1_patch_len + ki],
            g1.patches(),
            g1.patch_len(),
            g1.out_ch,
            Some(&qparams.conv1_b),
            ncfg.mac_shift(),
            ActivationKind::Relu,
            true,
        );
        let conv1_outs: Vec<Tensor<i8>> = conv1_mns.iter().map(|mn| to_chw(mn, &g1)).collect();
        self.traffic.write(
            MemoryKind::DataMemory,
            u64_from(batch * conv1_outs[0].len()),
        );
        for (s, sat) in stats.iter_mut().zip(&conv1_sats) {
            s.macs += g1.macs();
            s.saturations += sat;
        }
        layers.push(LayerRun {
            name: "Conv1",
            array_cycles: self.array.cycles() - c0,
            activation_cycles: self.activation_cycles - a0,
            memory_stall_cycles: self.memory_stall_cycles - m0,
        });
        self.rec.end(SpanDetail::Layers);
        // ------------------------------------------- PrimaryCaps + squash
        let gp = net.primary_caps_geometry();
        self.rec.begin(SpanDetail::Layers, "PrimaryCaps");
        let c0 = self.array.cycles();
        let a0 = self.activation_cycles;
        let m0 = self.memory_stall_cycles;
        self.traffic.read(MemoryKind::Dram, u64_from(gp.out_ch));
        self.memory.stage_bias(u64_from(gp.out_ch));
        let conv1_ref = &conv1_outs;
        let wp = &qparams.pc_w;
        let (gp_origins, gp_taps) = (gp.patch_origins(), gp.tap_offsets());
        let gp_patch_len = gp.patch_len();
        let (pc_mns, pc_sats) = self.matmul_batch_inner(
            batch,
            &|img, mi, ki| conv1_ref[img].data()[gp_origins[mi] + gp_taps[ki]],
            &|ki, oc| wp.data()[oc * gp_patch_len + ki],
            gp.patches(),
            gp.patch_len(),
            gp.out_ch,
            Some(&qparams.pc_b),
            ncfg.mac_shift(),
            ActivationKind::Identity,
            true,
        );
        let pc_outs: Vec<Tensor<i8>> = pc_mns.iter().map(|mn| to_chw(mn, &gp)).collect();
        let capsules: Vec<Tensor<i8>> = pc_outs
            .iter()
            .map(|pc| self.squash_primary(net, pc))
            .collect();
        self.traffic
            .write(MemoryKind::DataMemory, u64_from(batch * capsules[0].len()));
        for (s, sat) in stats.iter_mut().zip(&pc_sats) {
            s.macs += gp.macs();
            s.saturations += sat;
        }
        layers.push(LayerRun {
            name: "PrimaryCaps",
            array_cycles: self.array.cycles() - c0,
            activation_cycles: self.activation_cycles - a0,
            memory_stall_cycles: self.memory_stall_cycles - m0,
        });
        self.rec.end(SpanDetail::Layers);
        // ------------------------------------------------ ClassCaps: Load
        self.rec.begin(SpanDetail::Layers, "ClassCaps");
        let (in_caps, classes, out_dim, in_dim) = (
            net.num_primary_caps(),
            net.num_classes,
            net.class_caps_dim,
            net.pc_caps_dim,
        );
        let u_hat_bytes = u64_from(in_caps * classes * out_dim);
        let mut steps = Vec::new();
        let m0 = self.memory_stall_cycles;
        self.traffic
            .read(MemoryKind::DataMemory, u64_from(batch) * u_hat_bytes);
        self.traffic
            .write(MemoryKind::DataBuffer, u64_from(batch) * u_hat_bytes);
        // The û upload exists only in the step table (no engine counter
        // moves): an `Io` charge, like routing's first-softmax init.
        let load_cycles = u64_from(batch) * u_hat_bytes.div_ceil(self.cfg.data_mem_bw);
        self.rec.begin(SpanDetail::Phases, "load-uhat");
        self.rec.advance(CycleKind::Io, load_cycles);
        self.rec.end(SpanDetail::Phases);
        steps.push((RoutingStep::Load, load_cycles));

        // -------------------------------------------------- ClassCaps: FC
        // Per input capsule, its `W_ij` block is the resident operand and
        // all images' capsule vectors stream against it — the batch
        // generalization of the paper's weight reuse, and the biggest
        // ClassCaps win (the FC weights are read once per *batch*).
        // Like routing's Sum/Update steps, FC counts array cycles only
        // (+ memory stalls via the layer delta): mask the matmuls'
        // activation-drain charges so the span equals the step.
        self.rec.begin(SpanDetail::Phases, "fc");
        self.rec.suppress(CycleKind::Activation);
        let c0 = self.array.cycles();
        let wc = &qparams.w_class;
        let caps_ref = &capsules;
        let mut u_hats: Vec<Tensor<i8>> = (0..batch)
            .map(|_| Tensor::zeros(&[in_caps, classes, out_dim]))
            .collect();
        for cap in 0..in_caps {
            let (fc, fc_sats) = self.matmul_batch_inner(
                batch,
                &|img, _mi, d| caps_ref[img].data()[cap * in_dim + d],
                // `col = class * out_dim + e`, and the `[cap][class][e][d]`
                // layout flattens to `(cap * classes * out_dim + col) * in_dim
                // + d` — no per-element div/mod decomposition needed.
                &|d, col| wc.data()[(cap * classes * out_dim + col) * in_dim + d],
                1,
                in_dim,
                classes * out_dim,
                None,
                ncfg.mac_shift(),
                ActivationKind::Identity,
                true,
            );
            for (img, row) in fc.iter().enumerate() {
                u_hats[img].data_mut()[cap * classes * out_dim..(cap + 1) * classes * out_dim]
                    .copy_from_slice(row.data());
            }
            for (s, sat) in stats.iter_mut().zip(&fc_sats) {
                s.saturations += sat;
            }
        }
        for s in stats.iter_mut() {
            s.macs += u64_from(in_caps * classes * out_dim * in_dim);
        }
        self.rec.unsuppress(CycleKind::Activation);
        self.rec.end(SpanDetail::Phases);
        steps.push((RoutingStep::Fc, self.array.cycles() - c0));
        // ------------------------------------------- Routing-by-agreement
        // The routing "weights" are the per-image predictions û — there
        // is nothing to share across the batch, so each image runs the
        // exact sequential code path; step cycles aggregate elementwise.
        let mut traces = Vec::with_capacity(batch);
        for (img, u_hat) in u_hats.into_iter().enumerate() {
            let sat_before = self.accumulator_saturations;
            let mut image_steps = Vec::new();
            self.rec
                .begin_arg(SpanDetail::Phases, "routing", "img", u64_from(img));
            let routing = self.route_class_caps(net, &u_hat, &mut image_steps);
            self.rec.end(SpanDetail::Phases);
            stats[img].saturations += self.accumulator_saturations - sat_before;
            stats[img].macs += routing.macs;
            if img == 0 {
                steps.extend(image_steps);
            } else {
                // Same network ⇒ same step sequence for every image.
                for ((step, cycles), (s2, c2)) in steps[2..].iter_mut().zip(&image_steps) {
                    debug_assert_eq!(*step, *s2, "routing step sequences diverged");
                    *cycles += c2;
                }
            }
            traces.push(QuantTrace {
                input_q: inputs_q[img].clone(),
                conv1_out: conv1_outs[img].clone(),
                pc_out: pc_outs[img].clone(),
                capsules: capsules[img].clone(),
                u_hat,
                iterations: routing.iterations,
                output: QuantOutput {
                    class_norms: routing.final_norms,
                    predicted: routing.predicted,
                    class_caps: routing.class_caps,
                    couplings: routing.couplings,
                    stats: stats[img],
                },
            });
        }
        let class_caps_cycles: u64 = steps.iter().map(|(_, c)| *c).sum();
        layers.push(LayerRun {
            name: "ClassCaps",
            array_cycles: class_caps_cycles,
            activation_cycles: 0,
            memory_stall_cycles: self.memory_stall_cycles - m0,
        });
        self.rec.end(SpanDetail::Layers); // ClassCaps
        self.rec.end(SpanDetail::Layers); // inference

        Ok(BatchRun {
            traces,
            layers,
            steps,
            traffic: self.traffic.since(&traffic_at_start),
            memory: self.memory.report().since(&memory_at_start),
            accumulator_saturations: self.accumulator_saturations - saturations_at_start,
            batch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsacc_capsnet::CapsNetParams;

    fn setup() -> (CapsNetConfig, AcceleratorConfig, QuantizedParams) {
        let net = CapsNetConfig::tiny();
        let cfg = AcceleratorConfig::test_4x4();
        let qparams = CapsNetParams::generate(&net, 1).quantize(cfg.numeric);
        (net, cfg, qparams)
    }

    #[test]
    fn empty_batch_is_an_error_not_a_panic() {
        let (net, cfg, qparams) = setup();
        let mut sched = BatchScheduler::new(cfg);
        let err = sched.run(&net, &qparams, &[]).unwrap_err();
        assert_eq!(err, BatchError::EmptyBatch);
        assert_eq!(err.to_string(), "batch contains no images");
        // A rejected batch leaves the scheduler serviceable and does not
        // count towards the uptime counters.
        assert_eq!(sched.batches_run(), 0);
        let image = Tensor::from_fn(&[1, 12, 12], |i| (i[1] + i[2]) as f32 / 24.0);
        let run = sched.run(&net, &qparams, &[image]).expect("valid batch");
        assert_eq!(run.batch, 1);
        assert_eq!((sched.batches_run(), sched.images_run()), (1, 1));
    }

    #[test]
    fn mis_shaped_image_is_an_error_with_context() {
        let (net, cfg, qparams) = setup();
        let mut acc = Accelerator::new(cfg);
        let good = Tensor::from_fn(&[1, 12, 12], |i| (i[1] * i[2]) as f32 / 144.0);
        let bad = Tensor::from_fn(&[1, 8, 8], |i| (i[1] + i[2]) as f32 / 16.0);
        let cycles_before = acc.array_cycles();
        let err = acc.run_batch(&net, &qparams, &[good, bad]).unwrap_err();
        assert_eq!(
            err,
            BatchError::ImageShape {
                index: 1,
                got: vec![1, 8, 8],
                want: [1, 12, 12],
            }
        );
        assert!(err.to_string().contains("image 1"));
        // Checked before any counter moves: the engine state is clean.
        assert_eq!(acc.array_cycles(), cycles_before);
        assert_eq!(acc.traffic().total_bytes(), 0);
    }

    #[test]
    fn per_image_views_are_total_on_zero_image_runs() {
        let (net, cfg, qparams) = setup();
        let mut sched = BatchScheduler::new(cfg);
        let image = Tensor::from_fn(&[1, 12, 12], |i| (i[1] + i[2]) as f32 / 24.0);
        let mut run = sched.run(&net, &qparams, &[image]).expect("valid batch");
        // A hand-constructed zero-image view (the fields are public)
        // must stay total: 0.0, never NaN.
        run.batch = 0;
        assert_eq!(run.cycles_per_image(), 0.0);
        assert_eq!(run.weight_buffer_bytes_per_image(), 0.0);
        assert!(!run.cycles_per_image().is_nan());
    }

    #[test]
    fn functional_backend_batch_run_is_identical() {
        // The layer-major batched pass is backend-agnostic: the whole
        // BatchRun — traces, layer cycles, steps, traffic, memory,
        // saturations — is equal across backends on a reused scheduler.
        let (net, cfg, qparams) = setup();
        let mut fast_cfg = cfg;
        fast_cfg.backend = crate::EngineBackend::Functional;
        let images: Vec<Tensor<f32>> = (0..3)
            .map(|s| Tensor::from_fn(&[1, 12, 12], |i| ((i[1] * (s + 2) + i[2]) % 7) as f32 / 7.0))
            .collect();
        let mut ticked = BatchScheduler::new(cfg);
        let mut functional = BatchScheduler::new(fast_cfg);
        for split in [3usize, 2] {
            let want = ticked.run(&net, &qparams, &images[..split]).expect("batch");
            let got = functional
                .run(&net, &qparams, &images[..split])
                .expect("batch");
            assert_eq!(got, want);
        }
        assert_eq!(
            functional.into_accelerator().array_cycles(),
            ticked.into_accelerator().array_cycles()
        );
    }

    #[test]
    fn scheduler_reuse_counters_accumulate() {
        let (net, cfg, qparams) = setup();
        let images: Vec<Tensor<f32>> = (0..3)
            .map(|s| Tensor::from_fn(&[1, 12, 12], |i| ((i[1] * (s + 2) + i[2]) % 7) as f32 / 7.0))
            .collect();
        let mut sched = BatchScheduler::new(cfg);
        sched.run(&net, &qparams, &images).expect("batch 1");
        sched.run(&net, &qparams, &images[..2]).expect("batch 2");
        assert_eq!(sched.batches_run(), 2);
        assert_eq!(sched.images_run(), 5);
        // The consumed accelerator carries the cumulative counters of
        // both batches (strictly more than one batch's worth).
        let acc = sched.into_accelerator();
        assert!(acc.array_cycles() > 0);
        assert!(acc.traffic().total_bytes() > 0);
    }
}
