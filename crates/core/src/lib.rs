//! # capsacc-core — the CapsAcc accelerator, cycle-accurate
//!
//! A register-transfer-level simulator of the CapsAcc architecture
//! (Fig. 10 of the paper): a systolic array of processing elements with a
//! second weight register for data reuse, per-column accumulator FIFOs,
//! per-column activation units (ReLU / Norm / Squash / Softmax), the
//! Data / Routing / Weight buffers with traffic accounting, and the
//! control sequencing that maps every CapsuleNet layer and every
//! routing-by-agreement dataflow scenario (Fig. 12) onto the array.
//!
//! Two models, cross-validated against each other:
//!
//! - [`engine::Accelerator`] — the cycle-accurate engine: every PE
//!   register is ticked every cycle; outputs are **bit-exact** against
//!   the quantized reference model in `capsacc-capsnet` (the analogue of
//!   the paper's gate-level functional validation, Fig. 15).
//! - [`timing`] — the closed-form analytical cycle model used by the
//!   benchmark harness at MNIST scale; unit tests assert it agrees with
//!   the cycle-accurate engine exactly on small workloads.
//!
//! Behind both sits the **memory hierarchy** of `capsacc-memory`:
//! banked Data/Weight/Accumulator scratchpads, an off-chip DRAM channel
//! and a double-buffered tile prefetcher. Tile loads are
//! contention-accurate memory transactions; the engine and the
//! closed-form model drive the same [`MemorySubsystem`] replay, so their
//! stall accounting agrees exactly. The default
//! [`MemoryConfig::ideal`] ("IdealMemory") keeps every pre-hierarchy
//! cycle count and trace bit-exact.
//!
//! Both models come in a single-inference and a **batched** form: the
//! [`batch`] subsystem ([`BatchScheduler`] /
//! [`engine::Accelerator::run_batch`] /
//! [`timing::full_inference_batch`]) reorders a batch of inferences
//! layer-major so weights loaded into the second weight register stay
//! resident across all images — the paper's "reuse weights" scenario
//! generalized across inferences — while every per-image trace stays
//! bit-identical to a sequential run.
//!
//! # Example
//!
//! ```
//! use capsacc_core::{AcceleratorConfig, timing};
//! use capsacc_capsnet::CapsNetConfig;
//!
//! let acc = AcceleratorConfig::paper();
//! let net = CapsNetConfig::mnist();
//! let report = timing::full_inference(&acc, &net);
//! // The whole inference completes in a few milliseconds at 250 MHz.
//! let ms = report.total_time_us(&acc) / 1000.0;
//! assert!(ms > 0.1 && ms < 100.0);
//! ```

// `deny` (not `forbid`) so the one SIMD kernel module can locally
// re-allow `unsafe` for target-feature intrinsics; everything else in
// the crate still refuses unsafe code at compile time.
// lint:allow(unsafe-containment, kernel.rs::avx2 needs target-feature intrinsics; deny + a single audited allow is the documented exception)
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod accumulator;
mod activation;
pub mod batch;
mod config;
pub mod control;
pub mod engine;
mod kernel;
pub mod mapping;
mod pe;
mod systolic;
pub mod timing;
mod traffic;

pub use accumulator::AccumulatorUnit;
pub use activation::{ActivationKind, ActivationUnit};
pub use batch::{BatchError, BatchRun, BatchScheduler};
pub use capsacc_memory::{
    DramConfig, MatmulGeometry, MemReport, MemoryConfig, MemoryMode, MemorySubsystem, SpmActivity,
    SpmConfig, SpmKind, TileSchedule,
};
pub use capsacc_telemetry::{
    validate_span_tree, CycleKind, Recorder, SpanDetail, TelemetryConfig, TRACK_ENGINE,
};
pub use config::{
    AcceleratorConfig, DataflowOptions, EngineBackend, FunctionalOptions, KernelSelect, SimdMode,
    TraceLevel,
};
pub use control::{ControlOp, ControlUnit, DataSource, Program, WeightSource};
pub use engine::{Accelerator, InferenceRun, LayerRun};
pub use pe::{Pe, PeControl, PeInput, PeOutput, WeightSelect};
pub use systolic::SystolicArray;
pub use timing::{
    BatchInferenceTiming, InferenceTiming, LayerTiming, MemInferenceTiming, RoutingStep,
    RoutingStepTiming,
};
pub use traffic::{MemoryKind, TrafficCounter, TrafficReport};
