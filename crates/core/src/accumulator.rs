//! The per-column accumulator unit (Fig. 11c of the paper).

use std::collections::VecDeque;

use capsacc_fixed::saturate_to_bits;

/// A FIFO-plus-adder accumulator: stores the partial sums streaming out
/// of one systolic-array column and folds subsequent K-tiles into them.
///
/// The multiplexer of Fig. 11c selects between filling the FIFO with
/// fresh array outputs ([`AccumulatorUnit::push_new`]) and feeding it
/// from the internal adder ([`AccumulatorUnit::fold`]). Values are 25-bit
/// saturated, like every partial sum in the datapath.
///
/// # Example
///
/// ```
/// use capsacc_core::AccumulatorUnit;
/// let mut acc = AccumulatorUnit::new(4);
/// acc.push_new(10);      // K-tile 0, output row 0
/// acc.push_new(20);      // K-tile 0, output row 1
/// acc.fold(1);           // K-tile 1, output row 0
/// acc.fold(2);           // K-tile 1, output row 1
/// assert_eq!(acc.drain(), vec![11, 22]);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AccumulatorUnit {
    fifo: VecDeque<i64>,
    capacity: usize,
    saturations: u64,
}

impl AccumulatorUnit {
    /// Width of the accumulator datapath (25 bits, Sec. IV-B).
    pub const BITS: u32 = 25;

    /// Creates a unit whose FIFO holds at most `capacity` partial sums.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "accumulator capacity must be non-zero");
        Self {
            fifo: VecDeque::with_capacity(capacity),
            capacity,
            saturations: 0,
        }
    }

    /// FIFO capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of partial sums currently buffered.
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// Whether the FIFO is empty.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Saturation events observed so far.
    pub fn saturation_events(&self) -> u64 {
        self.saturations
    }

    /// One saturating accumulation step: clamps `raw` to the 25-bit
    /// datapath and reports whether the clamp engaged. The *single*
    /// definition of the fold semantics — [`AccumulatorUnit::fold`] /
    /// [`AccumulatorUnit::push_new`] apply it to the FIFO, and the
    /// engine's `Functional` backend applies it to its flat K-tile
    /// accumulators, so the two backends' event counting cannot drift
    /// (the same sharing principle as `Pe::mac_step`).
    pub(crate) fn fold_step(raw: i64) -> (i64, bool) {
        let s = saturate_to_bits(raw, Self::BITS);
        (s, s != raw)
    }

    fn saturate(&mut self, v: i64) -> i64 {
        let (s, clipped) = Self::fold_step(v);
        if clipped {
            self.saturations += 1;
        }
        s
    }

    /// Enqueues a fresh partial sum from the array (first K-tile: the
    /// multiplexer selects the array path).
    ///
    /// # Panics
    ///
    /// Panics if the FIFO is full — the control unit sizes tiles so this
    /// cannot happen in correct operation.
    pub fn push_new(&mut self, psum: i64) {
        assert!(
            self.fifo.len() < self.capacity,
            "accumulator FIFO overflow (capacity {})",
            self.capacity
        );
        let v = self.saturate(psum);
        self.fifo.push_back(v);
    }

    /// Pops the oldest partial sum, adds `psum`, and re-enqueues the
    /// result (subsequent K-tiles: the multiplexer selects the adder
    /// path). Order is preserved, so output row `m` always meets its own
    /// partial.
    ///
    /// # Panics
    ///
    /// Panics if the FIFO is empty.
    pub fn fold(&mut self, psum: i64) {
        let head = self.fifo.pop_front().expect("fold on empty accumulator");
        let v = self.saturate(head + psum);
        self.fifo.push_back(v);
    }

    /// Drains the FIFO in order, returning the completed sums.
    pub fn drain(&mut self) -> Vec<i64> {
        self.fifo.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fold_preserves_row_order() {
        let mut acc = AccumulatorUnit::new(3);
        for v in [1, 2, 3] {
            acc.push_new(v);
        }
        for v in [10, 20, 30] {
            acc.fold(v);
        }
        for v in [100, 200, 300] {
            acc.fold(v);
        }
        assert_eq!(acc.drain(), vec![111, 222, 333]);
    }

    #[test]
    fn saturation_is_counted() {
        let mut acc = AccumulatorUnit::new(1);
        let max = (1i64 << 24) - 1;
        acc.push_new(max);
        acc.fold(100);
        assert_eq!(acc.drain(), vec![max]);
        assert_eq!(acc.saturation_events(), 1);
    }

    #[test]
    #[should_panic(expected = "FIFO overflow")]
    fn overflow_is_a_control_bug() {
        let mut acc = AccumulatorUnit::new(2);
        acc.push_new(1);
        acc.push_new(2);
        acc.push_new(3);
    }

    #[test]
    #[should_panic(expected = "empty accumulator")]
    fn fold_on_empty_is_a_control_bug() {
        let mut acc = AccumulatorUnit::new(2);
        acc.fold(1);
    }

    #[test]
    fn drain_empties_the_fifo() {
        let mut acc = AccumulatorUnit::new(2);
        acc.push_new(5);
        assert_eq!(acc.len(), 1);
        assert_eq!(acc.drain(), vec![5]);
        assert!(acc.is_empty());
    }

    proptest! {
        #[test]
        fn folding_equals_columnwise_sum(
            tiles in proptest::collection::vec(
                proptest::collection::vec(-(1i64<<20)..(1i64<<20), 4), 1..6)
        ) {
            let mut acc = AccumulatorUnit::new(4);
            for v in &tiles[0] {
                acc.push_new(*v);
            }
            for tile in &tiles[1..] {
                for v in tile {
                    acc.fold(*v);
                }
            }
            let got = acc.drain();
            for m in 0..4 {
                let exact: i64 = tiles.iter().map(|t| t[m]).sum();
                prop_assert_eq!(got[m], exact.clamp(-(1i64<<24), (1i64<<24)-1));
            }
        }
    }
}
