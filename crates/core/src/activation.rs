//! The activation unit (Fig. 11d of the paper): ReLU, Norm, Squash and
//! Softmax, with the cycle costs stated in Sec. IV-C.

use capsacc_capsnet::QuantPipeline;
use capsacc_fixed::requantize;

/// Which function the activation unit's output multiplexer selects.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ActivationKind {
    /// Rectified linear unit (Conv1 and, in the paper's description, the
    /// first two layers).
    Relu,
    /// Plain requantization with no nonlinearity (the FC/û path).
    Identity,
    /// Norm followed by the squash LUT (capsule outputs).
    Squash,
    /// Softmax over a logit vector (coupling-coefficient generation).
    Softmax,
}

/// One activation unit — the paper instantiates one per array column.
///
/// The functional arithmetic is delegated to the *same*
/// [`QuantPipeline`] the reference model uses, which is what guarantees
/// bit-exactness; this type adds the hardware view: the 25-bit → 8-bit
/// requantization stage and the per-operation cycle costs.
///
/// # Example
///
/// ```
/// use capsacc_core::{ActivationUnit, ActivationKind};
/// use capsacc_capsnet::QuantPipeline;
/// use capsacc_fixed::NumericConfig;
///
/// let unit = ActivationUnit::new(QuantPipeline::new(NumericConfig::default()));
/// // Requantize a 25-bit MAC result (shift 6) and rectify.
/// assert_eq!(unit.reduce(-2048, 6, ActivationKind::Relu), 0);
/// assert_eq!(unit.reduce(2048, 6, ActivationKind::Relu), 32);
/// // Cycle costs from Sec. IV-C.
/// assert_eq!(ActivationUnit::norm_cycles(16), 17);
/// assert_eq!(ActivationUnit::softmax_cycles(10), 20);
/// ```
#[derive(Clone, Debug)]
pub struct ActivationUnit {
    pipeline: QuantPipeline,
}

impl ActivationUnit {
    /// Creates a unit around a LUT pipeline.
    pub fn new(pipeline: QuantPipeline) -> Self {
        Self { pipeline }
    }

    /// The underlying LUT pipeline.
    pub fn pipeline(&self) -> &QuantPipeline {
        &self.pipeline
    }

    /// The 25-bit → 8-bit reduction stage: shift/round/saturate, plus the
    /// elementwise nonlinearity for [`ActivationKind::Relu`] /
    /// [`ActivationKind::Identity`].
    ///
    /// # Panics
    ///
    /// Panics if called with [`ActivationKind::Squash`] or
    /// [`ActivationKind::Softmax`] — those operate on whole vectors via
    /// [`squash`](Self::squash) and [`softmax`](Self::softmax).
    pub fn reduce(&self, acc_raw: i64, shift: u32, kind: ActivationKind) -> i8 {
        let v = requantize(acc_raw, shift);
        match kind {
            ActivationKind::Relu => v.max(0),
            ActivationKind::Identity => v,
            ActivationKind::Squash | ActivationKind::Softmax => {
                panic!("vector activations use squash()/softmax()")
            }
        }
    }

    /// Squashes a capsule vector (norm unit + squash LUT), returning the
    /// squashed elements and the norm code.
    pub fn squash(&self, v: &[i8]) -> (Vec<i8>, u8) {
        self.pipeline.squash_vec(v)
    }

    /// Norm of a vector (the classification-prediction path).
    pub fn norm(&self, v: &[i8]) -> u8 {
        self.pipeline.norm8(v)
    }

    /// Softmax over a logit vector.
    ///
    /// # Panics
    ///
    /// Panics if `logits` is empty.
    pub fn softmax(&self, logits: &[i8]) -> Vec<i8> {
        self.pipeline.softmax(logits)
    }

    /// Cycles for a norm over an `n`-vector: `n + 1` (Sec. IV-C: "a valid
    /// output every n+1 clock cycles").
    pub const fn norm_cycles(n: u64) -> u64 {
        n + 1
    }

    /// Cycles for a squash over an `n`-vector: norm + 1 (Sec. IV-C: "a
    /// valid output is produced with just one additional clock cycle
    /// compared to the Norm").
    pub const fn squash_cycles(n: u64) -> u64 {
        Self::norm_cycles(n) + 1
    }

    /// Cycles for a softmax over an `n`-vector: `2n` (Sec. IV-C).
    pub const fn softmax_cycles(n: u64) -> u64 {
        2 * n
    }

    /// Cycles for ReLU/identity reduction of a value stream: fully
    /// pipelined, one value per cycle with a single cycle of latency.
    pub const fn reduce_cycles(n: u64) -> u64 {
        n + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsacc_fixed::NumericConfig;

    fn unit() -> ActivationUnit {
        ActivationUnit::new(QuantPipeline::new(NumericConfig::default()))
    }

    #[test]
    fn reduce_relu_and_identity() {
        let u = unit();
        assert_eq!(u.reduce(-2048, 6, ActivationKind::Identity), -32);
        assert_eq!(u.reduce(-2048, 6, ActivationKind::Relu), 0);
        assert_eq!(u.reduce(1 << 20, 6, ActivationKind::Identity), 127);
    }

    #[test]
    #[should_panic(expected = "vector activations")]
    fn reduce_rejects_vector_kinds() {
        unit().reduce(0, 6, ActivationKind::Squash);
    }

    #[test]
    fn squash_matches_pipeline() {
        let u = unit();
        let v = [32i8, -16, 8, 0];
        let (a, na) = u.squash(&v);
        let (b, nb) = u.pipeline().squash_vec(&v);
        assert_eq!((a, na), (b, nb));
    }

    #[test]
    fn softmax_matches_pipeline() {
        let u = unit();
        let l = [0i8, 16, -16, 32];
        assert_eq!(u.softmax(&l), u.pipeline().softmax(&l));
    }

    #[test]
    fn cycle_costs_match_paper() {
        // Norm: n+1; Squash: norm + 1; Softmax: 2n.
        assert_eq!(ActivationUnit::norm_cycles(8), 9);
        assert_eq!(ActivationUnit::squash_cycles(8), 10);
        assert_eq!(ActivationUnit::softmax_cycles(8), 16);
        assert_eq!(ActivationUnit::reduce_cycles(100), 101);
    }
}
