//! The control unit (Sec. IV-D of the paper).
//!
//! "At each stage of the inference process, it generates different
//! control signals for all the components of the accelerator
//! architecture, according to the operations needed." This module makes
//! that concrete: the control unit compiles a layer (or a routing phase)
//! into a [`Program`] — a linear schedule of [`ControlOp`]s including the
//! settings of the two input multiplexers in front of the systolic array
//! (Fig. 10), which are what select between fresh data and reused data
//! for the Fig. 12 dataflow scenarios.
//!
//! Programs are the declarative counterpart of what
//! [`crate::engine::Accelerator`] executes imperatively; their cycle
//! estimates match the [`crate::timing`] formulas, which is asserted by
//! tests.

use capsacc_capsnet::CapsNetConfig;
use capsacc_tensor::{u64_from, ConvGeometry};

use crate::activation::{ActivationKind, ActivationUnit};
use crate::config::AcceleratorConfig;
use crate::traffic::{MemoryKind, TrafficReport};

/// Source selected by the data-input multiplexer (west edge of the
/// array, Fig. 10).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum DataSource {
    /// Fresh data from the Data Buffer.
    DataBuffer,
    /// Coupling coefficients / logits from the Routing Buffer.
    RoutingBuffer,
    /// The horizontal feedback path reusing the previous outputs
    /// (Fig. 12c/d: `û` re-enters without touching memory).
    Feedback,
}

/// Source selected by the weight-input multiplexer (north edge).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum WeightSource {
    /// Trained weights from the Weight Buffer.
    WeightBuffer,
    /// Predictions `û` staged as the stationary operand (routing sums).
    DataBuffer,
    /// Squashed capsules `v_j` from the Routing Buffer (logit updates).
    RoutingBuffer,
}

/// One control-unit operation.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ControlOp {
    /// Select the array's input sources for the following operations.
    SetMux {
        /// West-edge (data) source.
        data: DataSource,
        /// North-edge (weight) source.
        weight: WeightSource,
    },
    /// Load a `k × n` weight tile into the resident registers
    /// (`k + 1` cycles: skewed rows plus the latch edge).
    LoadWeightTile {
        /// Tile height (reduction rows).
        k: usize,
        /// Tile width (output columns).
        n: usize,
    },
    /// Stream `m` data rows against the resident tile
    /// (`m + rows + cols` cycles including drain).
    StreamData {
        /// Number of data rows.
        m: usize,
        /// Active reduction length of each row.
        k: usize,
    },
    /// Run the activation units over `vectors` vectors of length `len`.
    Activate {
        /// Which function the output multiplexer selects.
        kind: ActivationKind,
        /// Number of vectors.
        vectors: usize,
        /// Vector length.
        len: usize,
    },
    /// Move `bytes` between a memory/buffer and the datapath.
    Transfer {
        /// Which storage structure.
        kind: MemoryKind,
        /// Bytes moved.
        bytes: u64,
        /// True for reads (into the datapath).
        read: bool,
    },
}

/// A compiled control schedule.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    ops: Vec<ControlOp>,
}

impl Program {
    /// The operations in issue order.
    pub fn ops(&self) -> &[ControlOp] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    fn push(&mut self, op: ControlOp) {
        self.ops.push(op);
    }

    /// Array-cycle estimate of the program on `cfg` (weight loads and
    /// data streams; activation and transfer costs are reported
    /// separately to mirror [`crate::timing::LayerTiming`]).
    pub fn array_cycles(&self, cfg: &AcceleratorConfig) -> u64 {
        self.ops
            .iter()
            .map(|op| match *op {
                ControlOp::LoadWeightTile { .. } => u64_from(cfg.rows) + 1,
                ControlOp::StreamData { m, .. } => u64_from(m + cfg.rows + cfg.cols),
                _ => 0,
            })
            .sum()
    }

    /// Activation-unit cycle estimate.
    pub fn activation_cycles(&self, cfg: &AcceleratorConfig) -> u64 {
        let au = u64_from(cfg.activation_units);
        self.ops
            .iter()
            .map(|op| match *op {
                ControlOp::Activate { kind, vectors, len } => {
                    let per = match kind {
                        ActivationKind::Relu | ActivationKind::Identity => {
                            ActivationUnit::reduce_cycles(u64_from(len))
                        }
                        ActivationKind::Squash => ActivationUnit::squash_cycles(u64_from(len)),
                        ActivationKind::Softmax => ActivationUnit::softmax_cycles(u64_from(len)),
                    };
                    u64_from(vectors).div_ceil(au) * per
                }
                _ => 0,
            })
            .sum()
    }

    /// The traffic this program moves.
    pub fn traffic(&self) -> TrafficReport {
        let mut t = TrafficReport::default();
        for op in &self.ops {
            if let ControlOp::Transfer { kind, bytes, read } = *op {
                if read {
                    t.read(kind, bytes);
                } else {
                    t.write(kind, bytes);
                }
            }
        }
        t
    }

    /// The sequence of multiplexer settings, in issue order — the
    /// Fig. 12 scenario fingerprint.
    pub fn mux_schedule(&self) -> Vec<(DataSource, WeightSource)> {
        self.ops
            .iter()
            .filter_map(|op| match *op {
                ControlOp::SetMux { data, weight } => Some((data, weight)),
                _ => None,
            })
            .collect()
    }
}

/// The control unit: compiles layers and routing phases into programs.
#[derive(Copy, Clone, Debug, Default)]
pub struct ControlUnit;

impl ControlUnit {
    /// Creates a control unit.
    pub fn new() -> Self {
        Self
    }

    /// Compiles a convolutional layer (Fig. 12a / Fig. 13 mapping):
    /// weight-stationary filter tiles from the Weight Buffer, im2col
    /// data rows from the Data Buffer, ReLU or identity at the output.
    pub fn conv_program(&self, g: &ConvGeometry, relu: bool, cfg: &AcceleratorConfig) -> Program {
        let mut p = Program::default();
        p.push(ControlOp::SetMux {
            data: DataSource::DataBuffer,
            weight: WeightSource::WeightBuffer,
        });
        let m = g.patches();
        let k_total = g.patch_len();
        let n_total = g.out_ch;
        for n0 in (0..n_total).step_by(cfg.cols) {
            let nt = cfg.cols.min(n_total - n0);
            for k0 in (0..k_total).step_by(cfg.rows) {
                let kt = cfg.rows.min(k_total - k0);
                p.push(ControlOp::Transfer {
                    kind: MemoryKind::WeightBuffer,
                    bytes: u64_from(kt * nt),
                    read: true,
                });
                p.push(ControlOp::LoadWeightTile { k: kt, n: nt });
                p.push(ControlOp::Transfer {
                    kind: MemoryKind::DataBuffer,
                    bytes: u64_from(m * kt),
                    read: true,
                });
                p.push(ControlOp::StreamData { m, k: kt });
            }
            p.push(ControlOp::Activate {
                kind: if relu {
                    ActivationKind::Relu
                } else {
                    ActivationKind::Identity
                },
                vectors: 1,
                len: m,
            });
        }
        p
    }

    /// Compiles one routing iteration's dataflow (the Fig. 12 scenarios):
    ///
    /// - iteration 1 (scenario b): `û` fresh from the Data Buffer,
    ///   couplings from the Routing Buffer;
    /// - iterations ≥ 2 (scenario d): `û` reused via the feedback path;
    /// - updates (scenario c): `û` via feedback, `v_j` from the Routing
    ///   Buffer, softmax at the output.
    pub fn routing_iteration_program(
        &self,
        net: &CapsNetConfig,
        iteration: usize,
        cfg: &AcceleratorConfig,
    ) -> Program {
        let mut p = Program::default();
        let caps = net.num_primary_caps();
        let classes = net.num_classes;
        let out_dim = net.class_caps_dim;
        let u_hat_bytes = u64_from(caps * classes * out_dim);
        let coupling_bytes = u64_from(caps * classes);
        let reuse = cfg.dataflow.routing_feedback && iteration > 1;

        // Sum generation: weights = û tiles (from the Data-Buffer staging,
        // whether freshly loaded or reused), data = coupling rows.
        p.push(ControlOp::SetMux {
            data: DataSource::RoutingBuffer,
            weight: WeightSource::DataBuffer,
        });
        if !reuse {
            p.push(ControlOp::Transfer {
                kind: MemoryKind::DataMemory,
                bytes: if iteration == 1 { 0 } else { u_hat_bytes },
                read: true,
            });
        }
        p.push(ControlOp::Transfer {
            kind: MemoryKind::RoutingBuffer,
            bytes: coupling_bytes,
            read: true,
        });
        for _class in 0..classes {
            for k0 in (0..caps).step_by(cfg.rows) {
                let kt = cfg.rows.min(caps - k0);
                p.push(ControlOp::LoadWeightTile {
                    k: kt,
                    n: cfg.cols.min(out_dim),
                });
                p.push(ControlOp::StreamData { m: 1, k: kt });
            }
        }
        // Squash the class capsules, write v to the Routing Buffer.
        p.push(ControlOp::Activate {
            kind: ActivationKind::Squash,
            vectors: classes,
            len: out_dim,
        });
        p.push(ControlOp::Transfer {
            kind: MemoryKind::RoutingBuffer,
            bytes: u64_from(classes * out_dim),
            read: false,
        });

        // Update + softmax on all but the last iteration (scenario c).
        if iteration < net.routing_iterations {
            p.push(ControlOp::SetMux {
                data: if cfg.dataflow.routing_feedback {
                    DataSource::Feedback
                } else {
                    DataSource::DataBuffer
                },
                weight: WeightSource::RoutingBuffer,
            });
            if !cfg.dataflow.routing_feedback {
                p.push(ControlOp::Transfer {
                    kind: MemoryKind::DataMemory,
                    bytes: u_hat_bytes,
                    read: true,
                });
            }
            for _class in 0..classes {
                p.push(ControlOp::LoadWeightTile { k: out_dim, n: 1 });
                p.push(ControlOp::StreamData {
                    m: caps,
                    k: out_dim,
                });
            }
            p.push(ControlOp::Activate {
                kind: ActivationKind::Softmax,
                vectors: caps,
                len: classes,
            });
            p.push(ControlOp::Transfer {
                kind: MemoryKind::RoutingBuffer,
                bytes: 2 * coupling_bytes,
                read: false,
            });
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::{matmul_cycles, MatmulShape};

    fn cfg() -> AcceleratorConfig {
        let mut c = AcceleratorConfig::test_4x4();
        c.dataflow.pipelined_tiles = false;
        c
    }

    #[test]
    fn conv_program_cycles_match_serial_timing() {
        let g = ConvGeometry::new(2, 6, 6, 5, 3, 3, 1);
        let p = ControlUnit::new().conv_program(&g, true, &cfg());
        let want = matmul_cycles(
            MatmulShape {
                m: u64_from(g.patches()),
                k: u64_from(g.patch_len()),
                n: u64_from(g.out_ch),
            },
            &cfg(),
        );
        assert_eq!(p.array_cycles(&cfg()), want);
    }

    #[test]
    fn conv_program_reads_each_weight_once() {
        let g = ConvGeometry::new(1, 5, 5, 4, 3, 3, 1);
        let p = ControlUnit::new().conv_program(&g, false, &cfg());
        let t = p.traffic();
        assert_eq!(
            t.counter(MemoryKind::WeightBuffer).read_bytes,
            u64_from(g.patch_len() * g.out_ch)
        );
    }

    #[test]
    fn conv_program_selects_weight_buffer() {
        let g = ConvGeometry::new(1, 5, 5, 4, 3, 3, 1);
        let p = ControlUnit::new().conv_program(&g, true, &cfg());
        assert_eq!(
            p.mux_schedule(),
            vec![(DataSource::DataBuffer, WeightSource::WeightBuffer)]
        );
    }

    #[test]
    fn routing_muxes_match_fig12_scenarios() {
        let net = CapsNetConfig::tiny();
        let cu = ControlUnit::new();
        // Iteration 1 (scenario b + c): û fresh, then feedback update.
        let p1 = cu.routing_iteration_program(&net, 1, &cfg());
        assert_eq!(
            p1.mux_schedule(),
            vec![
                (DataSource::RoutingBuffer, WeightSource::DataBuffer),
                (DataSource::Feedback, WeightSource::RoutingBuffer),
            ]
        );
        // Final iteration (scenario d only): no update phase.
        let p3 = cu.routing_iteration_program(&net, 3, &cfg());
        assert_eq!(
            p3.mux_schedule(),
            vec![(DataSource::RoutingBuffer, WeightSource::DataBuffer)]
        );
    }

    #[test]
    fn feedback_off_reads_data_memory_every_iteration() {
        let net = CapsNetConfig::tiny();
        let mut c = cfg();
        c.dataflow.routing_feedback = false;
        let cu = ControlUnit::new();
        let u_hat_bytes = u64_from(net.num_primary_caps() * net.num_classes * net.class_caps_dim);
        // Iteration 2 without feedback re-reads û for sum AND update.
        let p = cu.routing_iteration_program(&net, 2, &c);
        assert_eq!(
            p.traffic().counter(MemoryKind::DataMemory).read_bytes,
            2 * u_hat_bytes
        );
        // With feedback it reads nothing from Data Memory.
        let p = cu.routing_iteration_program(&net, 2, &cfg());
        assert_eq!(p.traffic().counter(MemoryKind::DataMemory).read_bytes, 0);
    }

    #[test]
    fn activation_costs_use_section4c_formulas() {
        let net = CapsNetConfig::tiny();
        let p = ControlUnit::new().routing_iteration_program(&net, 1, &cfg());
        // Squash of 4 classes (4-dim) on 4 units + softmax of 32 capsules
        // (4 classes) on 4 units.
        let want = ActivationUnit::squash_cycles(4) + 8 * ActivationUnit::softmax_cycles(4);
        assert_eq!(p.activation_cycles(&cfg()), want);
    }

    #[test]
    fn program_introspection() {
        let p = Program::default();
        assert!(p.is_empty());
        let g = ConvGeometry::new(1, 4, 4, 2, 2, 2, 1);
        let p = ControlUnit::new().conv_program(&g, true, &cfg());
        assert!(!p.is_empty());
        assert_eq!(p.len(), p.ops().len());
    }
}
