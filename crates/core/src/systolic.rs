//! The systolic array (Fig. 11a of the paper).

use crate::pe::{Pe, PeControl, PeInput, PeOutput};
use capsacc_tensor::{u64_from, usize_from};

/// Outputs visible at the array edges after a clock edge.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ArrayOutput {
    /// Data leaving the east edge (one per row) — the horizontal feedback
    /// path taps these during routing (Fig. 12c/d).
    pub data_east: Vec<i8>,
    /// Partial sums leaving the south edge (one per column), feeding the
    /// accumulator units.
    pub psum_south: Vec<i64>,
    /// Weights leaving the south edge (unconnected in hardware, exposed
    /// for testing).
    pub weight_south: Vec<i8>,
}

/// An `rows × cols` grid of [`Pe`]s with the paper's interconnect: data
/// flows west→east, weights and partial sums flow north→south, and the
/// first row's partial-sum inputs are hardwired to zero (the "Null"
/// blocks of Fig. 10).
///
/// # Example
///
/// ```
/// use capsacc_core::SystolicArray;
/// let mut arr = SystolicArray::new(2, 2);
/// // Preload a 2×2 weight tile held in the PEs, then stream data.
/// arr.load_weights(&[&[1, 2], &[3, 4]]);
/// let outs = arr.stream(&[vec![10, 20]]);
/// // Output column c = Σ_r data[r] · w[r][c].
/// assert_eq!(outs[0], vec![10 * 1 + 20 * 3, 10 * 2 + 20 * 4]);
/// ```
#[derive(Clone, Debug)]
pub struct SystolicArray {
    rows: usize,
    cols: usize,
    pes: Vec<Pe>,
    cycles: u64,
    edge: EdgeBuffers,
    feed: FeedBuffers,
}

/// Reusable per-edge wavefront and edge-output buffers. In hardware
/// these are wires, not state: hoisting them out of [`SystolicArray::
/// tick`]'s body removes five heap allocations per clock edge from the
/// hot loop without changing a single observable value.
#[derive(Clone, Debug, Default)]
struct EdgeBuffers {
    weight_down: Vec<i8>,
    psum_down: Vec<i64>,
    data_east: Vec<i8>,
    psum_south: Vec<i64>,
    weight_south: Vec<i8>,
}

/// Reusable west/north edge-input staging buffers for
/// [`SystolicArray::stream`] and [`SystolicArray::load_weights`]
/// (`west`/`wrow`/`zeros` used to be rebuilt per call).
#[derive(Clone, Debug, Default)]
struct FeedBuffers {
    west: Vec<i8>,
    north: Vec<i8>,
}

/// Scratch buffers are wires, not architectural state: equality is the
/// PE registers plus the cycle counter, so a freshly built array
/// compares equal to a reset one regardless of scratch history.
impl PartialEq for SystolicArray {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.pes == other.pes
            && self.cycles == other.cycles
    }
}

impl Eq for SystolicArray {}

/// Advances the whole PE grid one clock edge, writing the edge outputs
/// into `edge` (a free function over disjoint field borrows so the
/// callers can stage inputs in their own reusable buffers).
fn tick_edge(
    rows: usize,
    cols: usize,
    pes: &mut [Pe],
    data_west: &[i8],
    weight_north: &[i8],
    ctrl: PeControl,
    edge: &mut EdgeBuffers,
) {
    assert_eq!(data_west.len(), rows, "west data width");
    assert_eq!(weight_north.len(), cols, "north weight width");
    edge.data_east.resize(rows, 0);
    edge.psum_south.resize(cols, 0);
    edge.weight_south.resize(cols, 0);
    // Per-column wavefronts flowing south within this cycle.
    edge.weight_down.clear();
    edge.weight_down.extend_from_slice(weight_north);
    edge.psum_down.clear();
    edge.psum_down.resize(cols, 0);

    for r in 0..rows {
        // Per-row wavefront flowing east within this cycle.
        let mut data_right = data_west[r];
        for c in 0..cols {
            let out: PeOutput = pes[r * cols + c].tick(
                PeInput {
                    data: data_right,
                    weight: edge.weight_down[c],
                    psum: edge.psum_down[c],
                },
                ctrl,
            );
            data_right = out.data;
            edge.weight_down[c] = out.weight;
            edge.psum_down[c] = out.psum;
            if c == cols - 1 {
                edge.data_east[r] = out.data;
            }
            if r == rows - 1 {
                edge.psum_south[c] = out.psum;
                edge.weight_south[c] = out.weight;
            }
        }
    }
}

impl SystolicArray {
    /// Creates an array with all PE registers cleared.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be non-zero");
        Self {
            rows,
            cols,
            pes: vec![Pe::new(); rows * cols],
            cycles: 0,
            edge: EdgeBuffers::default(),
            feed: FeedBuffers::default(),
        }
    }

    /// Array height (the reduction dimension).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array width (the output dimension).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Clock edges executed since construction or [`reset`](Self::reset).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Clears every PE register and the cycle counter.
    pub fn reset(&mut self) {
        for pe in &mut self.pes {
            pe.reset();
        }
        self.cycles = 0;
    }

    /// Clock edges one [`load_weights`](Self::load_weights) call
    /// consumes: `rows` skewed weight rows plus the latch edge. The
    /// single definition of the load cost — the ticked loader returns
    /// it and the `Functional` backend charges it.
    pub fn load_edges(&self) -> u64 {
        u64_from(self.rows) + 1
    }

    /// Clock edges one [`stream`](Self::stream) call consumes for `m`
    /// data rows: skewed injection plus pipeline drain. The single
    /// definition of the stream cost — the ticked streamer executes
    /// exactly this many edges and the `Functional` backend charges it.
    pub fn stream_edges(&self, m: usize) -> u64 {
        u64_from(m + self.rows + self.cols)
    }

    /// Charges `n` clock edges to the cycle counter without ticking a
    /// single PE — the `Functional` engine backend computes tile
    /// results directly and accounts the edges it provably would have
    /// spent ([`load_edges`](Self::load_edges) /
    /// [`stream_edges`](Self::stream_edges) per tile).
    pub(crate) fn advance_cycles(&mut self, n: u64) {
        self.cycles += n;
    }

    /// Advances the whole array one clock edge.
    ///
    /// `data_west[r]` enters row `r` from the west; `weight_north[c]`
    /// enters column `c` from the north; `ctrl` is broadcast to every PE
    /// (the control unit drives these lines globally).
    ///
    /// Raster-order evaluation is cycle-exact: [`Pe::tick`] returns the
    /// *pre-edge* register values, which are precisely what each
    /// neighbour must observe during the same cycle.
    ///
    /// # Panics
    ///
    /// Panics if the input slices do not match the array dimensions.
    pub fn tick(&mut self, data_west: &[i8], weight_north: &[i8], ctrl: PeControl) -> ArrayOutput {
        self.cycles += 1;
        tick_edge(
            self.rows,
            self.cols,
            &mut self.pes,
            data_west,
            weight_north,
            ctrl,
            &mut self.edge,
        );
        ArrayOutput {
            data_east: self.edge.data_east.clone(),
            psum_south: self.edge.psum_south.clone(),
            weight_south: self.edge.weight_south.clone(),
        }
    }

    /// Loads a weight tile into the resident (`Weight2`) registers: rows
    /// are streamed south in reverse order (`tile.len()` edges), then one
    /// latch edge copies `Weight1 → Weight2` across the array.
    ///
    /// Returns the number of clock edges consumed (`tile.len() + 1`).
    ///
    /// # Panics
    ///
    /// Panics if the tile is taller than the array or a row is wider than
    /// the array (narrower tiles are zero-padded).
    pub fn load_weights(&mut self, tile: &[&[i8]]) -> u64 {
        let k = tile.len();
        assert!(k <= self.rows, "weight tile taller than the array");
        let edges = self.load_edges();
        let Self {
            rows,
            cols,
            pes,
            cycles,
            edge,
            feed,
        } = self;
        let (rows, cols) = (*rows, *cols);
        feed.west.clear();
        feed.west.resize(rows, 0); // all-zero west edge during loads
        feed.north.resize(cols, 0);
        // Rows enter in reverse so row r settles in PE row r. If the tile
        // is shorter than the array, unused rows receive zeros first.
        for t in 0..rows {
            feed.north.fill(0);
            if rows - 1 - t < k {
                let src = tile[rows - 1 - t];
                assert!(src.len() <= cols, "weight tile wider than the array");
                feed.north[..src.len()].copy_from_slice(src);
            }
            *cycles += 1;
            tick_edge(
                rows,
                cols,
                pes,
                &feed.west,
                &feed.north,
                PeControl::default(),
                edge,
            );
        }
        feed.north.fill(0);
        *cycles += 1;
        tick_edge(
            rows,
            cols,
            pes,
            &feed.west,
            &feed.north,
            PeControl {
                latch_weight2: true,
                ..PeControl::default()
            },
            edge,
        );
        edges
    }

    /// Streams data rows through the array against the resident weights
    /// and collects the de-skewed output matrix: `out[m][c] = Σ_r
    /// data[m][r] · w2[r][c]` (zero-padded where a row is shorter than
    /// the array).
    ///
    /// Consumes `M + rows + cols` clock edges (skewed injection plus
    /// pipeline drain).
    ///
    /// # Panics
    ///
    /// Panics if any data row is wider than the array.
    pub fn stream(&mut self, data: &[Vec<i8>]) -> Vec<Vec<i64>> {
        use crate::pe::WeightSelect;
        let m = data.len();
        let mut out = vec![vec![0i64; self.cols]; m];
        let ctrl = PeControl {
            select: WeightSelect::Held,
            latch_weight2: false,
        };
        let total_edges = usize_from(self.stream_edges(m));
        let Self {
            rows,
            cols,
            pes,
            cycles,
            edge,
            feed,
        } = self;
        let (rows, cols) = (*rows, *cols);
        feed.north.clear();
        feed.north.resize(cols, 0); // weights held, nothing streams north
        feed.west.resize(rows, 0);
        for s in 0..total_edges {
            for (r, w) in feed.west.iter_mut().enumerate() {
                // Skewed injection: row r sees data row (s - r).
                *w = if s >= r && s - r < m {
                    let row = &data[s - r];
                    if r < row.len() {
                        row[r]
                    } else {
                        0
                    }
                } else {
                    0
                };
            }
            *cycles += 1;
            tick_edge(rows, cols, pes, &feed.west, &feed.north, ctrl, edge);
            // The psum visible at the south edge of column c on edge s
            // belongs to data row m = s - rows - c.
            for (c, &psum) in edge.psum_south.iter().enumerate() {
                if s >= rows + c {
                    let mm = s - rows - c;
                    if mm < m {
                        out[mm][c] = psum;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_pe_matmul() {
        let mut arr = SystolicArray::new(1, 1);
        arr.load_weights(&[&[3]]);
        let out = arr.stream(&[vec![5], vec![-2]]);
        assert_eq!(out, vec![vec![15], vec![-6]]);
    }

    #[test]
    fn identity_weights_pass_data() {
        let mut arr = SystolicArray::new(3, 3);
        let id: Vec<Vec<i8>> = (0..3)
            .map(|r| (0..3).map(|c| i8::from(r == c)).collect())
            .collect();
        let id_refs: Vec<&[i8]> = id.iter().map(|r| r.as_slice()).collect();
        arr.load_weights(&id_refs);
        let out = arr.stream(&[vec![7, -8, 9]]);
        assert_eq!(out, vec![vec![7, -8, 9]]);
    }

    #[test]
    fn matches_reference_matmul_4x4() {
        let (rows, cols, m) = (4, 4, 6);
        let w: Vec<Vec<i8>> = (0..rows)
            .map(|r| (0..cols).map(|c| (r * 7 + c * 3) as i8 - 10).collect())
            .collect();
        let d: Vec<Vec<i8>> = (0..m)
            .map(|i| (0..rows).map(|k| (i * 5 + k) as i8 - 7).collect())
            .collect();
        let mut arr = SystolicArray::new(rows, cols);
        let wrefs: Vec<&[i8]> = w.iter().map(|r| r.as_slice()).collect();
        arr.load_weights(&wrefs);
        let out = arr.stream(&d);
        for (i, row) in out.iter().enumerate() {
            for c in 0..cols {
                let exact: i64 = (0..rows).map(|k| d[i][k] as i64 * w[k][c] as i64).sum();
                assert_eq!(row[c], exact, "mismatch at ({i}, {c})");
            }
        }
    }

    #[test]
    fn short_tiles_are_zero_padded() {
        let mut arr = SystolicArray::new(4, 4);
        // 2-row, 3-col tile in a 4×4 array.
        arr.load_weights(&[&[1, 2, 3], &[4, 5, 6]]);
        let out = arr.stream(&[vec![1, 1]]);
        assert_eq!(out[0], vec![5, 7, 9, 0]);
    }

    #[test]
    fn cycle_counting() {
        let mut arr = SystolicArray::new(4, 4);
        let row: &[i8] = &[1, 2, 3, 4];
        let load = arr.load_weights(&[row, row, row, row]);
        assert_eq!(load, 5); // rows + 1 latch
        assert_eq!(arr.cycles(), 5);
        arr.stream(&vec![vec![0, 0, 0, 0]; 3]);
        assert_eq!(arr.cycles(), 5 + 3 + 4 + 4);
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut arr = SystolicArray::new(2, 2);
        arr.load_weights(&[&[9, 9], &[9, 9]]);
        arr.reset();
        assert_eq!(arr.cycles(), 0);
        let out = arr.stream(&[vec![5, 5]]);
        assert_eq!(out[0], vec![0, 0]);
    }

    #[test]
    fn scratch_reuse_is_invisible() {
        // The hoisted edge/feed buffers must not leak state between
        // calls: a long-used array equals a fresh one after reset, and
        // repeated identical streams produce identical outputs.
        let mut used = SystolicArray::new(3, 3);
        used.load_weights(&[&[1, 2, 3], &[4, 5, 6], &[7, 8, 9]]);
        let a = used.stream(&[vec![1, -2, 3], vec![4, 5, -6]]);
        let b = used.stream(&[vec![1, -2, 3], vec![4, 5, -6]]);
        assert_eq!(a, b);
        used.reset();
        assert_eq!(used, SystolicArray::new(3, 3));
    }

    #[test]
    #[should_panic(expected = "taller than the array")]
    fn oversized_tile_rejected() {
        let mut arr = SystolicArray::new(2, 2);
        arr.load_weights(&[&[1, 1], &[1, 1], &[1, 1]]);
    }

    #[test]
    fn consecutive_streams_reuse_held_weights() {
        // The convolutional reuse pattern: load once, stream many times.
        let mut arr = SystolicArray::new(2, 2);
        arr.load_weights(&[&[2, 0], &[0, 2]]);
        let a = arr.stream(&[vec![3, 4]]);
        let b = arr.stream(&[vec![5, 6]]);
        assert_eq!(a[0], vec![6, 8]);
        assert_eq!(b[0], vec![10, 12]);
    }

    proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]
        #[test]
        fn random_tiles_match_reference(
            rows in 1usize..5, cols in 1usize..5, m in 1usize..6, seed in any::<u64>()
        ) {
            let mut s = seed | 1;
            let mut next = move || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                (s >> 56) as i8
            };
            let w: Vec<Vec<i8>> = (0..rows).map(|_| (0..cols).map(|_| next()).collect()).collect();
            let d: Vec<Vec<i8>> = (0..m).map(|_| (0..rows).map(|_| next()).collect()).collect();
            let mut arr = SystolicArray::new(rows, cols);
            let wrefs: Vec<&[i8]> = w.iter().map(|r| r.as_slice()).collect();
            arr.load_weights(&wrefs);
            let out = arr.stream(&d);
            for i in 0..m {
                for c in 0..cols {
                    let exact: i64 = (0..rows).map(|k| d[i][k] as i64 * w[k][c] as i64).sum();
                    prop_assert_eq!(out[i][c], exact);
                }
            }
        }
    }
}
