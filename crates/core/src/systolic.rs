//! The systolic array (Fig. 11a of the paper).

use crate::pe::{Pe, PeControl, PeInput, PeOutput};

/// Outputs visible at the array edges after a clock edge.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ArrayOutput {
    /// Data leaving the east edge (one per row) — the horizontal feedback
    /// path taps these during routing (Fig. 12c/d).
    pub data_east: Vec<i8>,
    /// Partial sums leaving the south edge (one per column), feeding the
    /// accumulator units.
    pub psum_south: Vec<i64>,
    /// Weights leaving the south edge (unconnected in hardware, exposed
    /// for testing).
    pub weight_south: Vec<i8>,
}

/// An `rows × cols` grid of [`Pe`]s with the paper's interconnect: data
/// flows west→east, weights and partial sums flow north→south, and the
/// first row's partial-sum inputs are hardwired to zero (the "Null"
/// blocks of Fig. 10).
///
/// # Example
///
/// ```
/// use capsacc_core::SystolicArray;
/// let mut arr = SystolicArray::new(2, 2);
/// // Preload a 2×2 weight tile held in the PEs, then stream data.
/// arr.load_weights(&[&[1, 2], &[3, 4]]);
/// let outs = arr.stream(&[vec![10, 20]]);
/// // Output column c = Σ_r data[r] · w[r][c].
/// assert_eq!(outs[0], vec![10 * 1 + 20 * 3, 10 * 2 + 20 * 4]);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SystolicArray {
    rows: usize,
    cols: usize,
    pes: Vec<Pe>,
    cycles: u64,
}

impl SystolicArray {
    /// Creates an array with all PE registers cleared.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be non-zero");
        Self {
            rows,
            cols,
            pes: vec![Pe::new(); rows * cols],
            cycles: 0,
        }
    }

    /// Array height (the reduction dimension).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array width (the output dimension).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Clock edges executed since construction or [`reset`](Self::reset).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Clears every PE register and the cycle counter.
    pub fn reset(&mut self) {
        for pe in &mut self.pes {
            pe.reset();
        }
        self.cycles = 0;
    }

    #[inline]
    fn pe_index(&self, r: usize, c: usize) -> usize {
        r * self.cols + c
    }

    /// Advances the whole array one clock edge.
    ///
    /// `data_west[r]` enters row `r` from the west; `weight_north[c]`
    /// enters column `c` from the north; `ctrl` is broadcast to every PE
    /// (the control unit drives these lines globally).
    ///
    /// Raster-order evaluation is cycle-exact: [`Pe::tick`] returns the
    /// *pre-edge* register values, which are precisely what each
    /// neighbour must observe during the same cycle.
    ///
    /// # Panics
    ///
    /// Panics if the input slices do not match the array dimensions.
    pub fn tick(&mut self, data_west: &[i8], weight_north: &[i8], ctrl: PeControl) -> ArrayOutput {
        assert_eq!(data_west.len(), self.rows, "west data width");
        assert_eq!(weight_north.len(), self.cols, "north weight width");
        self.cycles += 1;

        let mut data_east = vec![0i8; self.rows];
        let mut psum_south = vec![0i64; self.cols];
        let mut weight_south = vec![0i8; self.cols];
        // Per-column wavefronts flowing south within this cycle.
        let mut weight_down = weight_north.to_vec();
        let mut psum_down = vec![0i64; self.cols];

        for r in 0..self.rows {
            // Per-row wavefront flowing east within this cycle.
            let mut data_right = data_west[r];
            for c in 0..self.cols {
                let idx = self.pe_index(r, c);
                let out: PeOutput = self.pes[idx].tick(
                    PeInput {
                        data: data_right,
                        weight: weight_down[c],
                        psum: psum_down[c],
                    },
                    ctrl,
                );
                data_right = out.data;
                weight_down[c] = out.weight;
                psum_down[c] = out.psum;
                if c == self.cols - 1 {
                    data_east[r] = out.data;
                }
                if r == self.rows - 1 {
                    psum_south[c] = out.psum;
                    weight_south[c] = out.weight;
                }
            }
        }

        ArrayOutput {
            data_east,
            psum_south,
            weight_south,
        }
    }

    /// Loads a weight tile into the resident (`Weight2`) registers: rows
    /// are streamed south in reverse order (`tile.len()` edges), then one
    /// latch edge copies `Weight1 → Weight2` across the array.
    ///
    /// Returns the number of clock edges consumed (`tile.len() + 1`).
    ///
    /// # Panics
    ///
    /// Panics if the tile is taller than the array or a row is wider than
    /// the array (narrower tiles are zero-padded).
    pub fn load_weights(&mut self, tile: &[&[i8]]) -> u64 {
        let k = tile.len();
        assert!(k <= self.rows, "weight tile taller than the array");
        let zeros = vec![0i8; self.rows];
        let mut wrow = vec![0i8; self.cols];
        // Rows enter in reverse so row r settles in PE row r. If the tile
        // is shorter than the array, unused rows receive zeros first.
        for t in 0..self.rows {
            wrow.fill(0);
            if self.rows - 1 - t < k {
                let src = tile[self.rows - 1 - t];
                assert!(src.len() <= self.cols, "weight tile wider than the array");
                wrow[..src.len()].copy_from_slice(src);
            }
            self.tick(&zeros, &wrow, PeControl::default());
        }
        wrow.fill(0);
        self.tick(
            &zeros,
            &wrow,
            PeControl {
                latch_weight2: true,
                ..PeControl::default()
            },
        );
        self.rows as u64 + 1
    }

    /// Streams data rows through the array against the resident weights
    /// and collects the de-skewed output matrix: `out[m][c] = Σ_r
    /// data[m][r] · w2[r][c]` (zero-padded where a row is shorter than
    /// the array).
    ///
    /// Consumes `M + rows + cols` clock edges (skewed injection plus
    /// pipeline drain).
    ///
    /// # Panics
    ///
    /// Panics if any data row is wider than the array.
    pub fn stream(&mut self, data: &[Vec<i8>]) -> Vec<Vec<i64>> {
        use crate::pe::WeightSelect;
        let m = data.len();
        let total_edges = m + self.rows + self.cols;
        let mut out = vec![vec![0i64; self.cols]; m];
        let ctrl = PeControl {
            select: WeightSelect::Held,
            latch_weight2: false,
        };
        let wzero = vec![0i8; self.cols];
        let mut west = vec![0i8; self.rows];
        for s in 0..total_edges {
            for (r, w) in west.iter_mut().enumerate() {
                // Skewed injection: row r sees data row (s - r).
                *w = if s >= r && s - r < m {
                    let row = &data[s - r];
                    if r < row.len() {
                        row[r]
                    } else {
                        0
                    }
                } else {
                    0
                };
            }
            let o = self.tick(&west, &wzero, ctrl);
            // The psum visible at the south edge of column c on edge s
            // belongs to data row m = s - rows - c.
            for (c, &psum) in o.psum_south.iter().enumerate() {
                if s >= self.rows + c {
                    let mm = s - self.rows - c;
                    if mm < m {
                        out[mm][c] = psum;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_pe_matmul() {
        let mut arr = SystolicArray::new(1, 1);
        arr.load_weights(&[&[3]]);
        let out = arr.stream(&[vec![5], vec![-2]]);
        assert_eq!(out, vec![vec![15], vec![-6]]);
    }

    #[test]
    fn identity_weights_pass_data() {
        let mut arr = SystolicArray::new(3, 3);
        let id: Vec<Vec<i8>> = (0..3)
            .map(|r| (0..3).map(|c| i8::from(r == c)).collect())
            .collect();
        let id_refs: Vec<&[i8]> = id.iter().map(|r| r.as_slice()).collect();
        arr.load_weights(&id_refs);
        let out = arr.stream(&[vec![7, -8, 9]]);
        assert_eq!(out, vec![vec![7, -8, 9]]);
    }

    #[test]
    fn matches_reference_matmul_4x4() {
        let (rows, cols, m) = (4, 4, 6);
        let w: Vec<Vec<i8>> = (0..rows)
            .map(|r| (0..cols).map(|c| (r * 7 + c * 3) as i8 - 10).collect())
            .collect();
        let d: Vec<Vec<i8>> = (0..m)
            .map(|i| (0..rows).map(|k| (i * 5 + k) as i8 - 7).collect())
            .collect();
        let mut arr = SystolicArray::new(rows, cols);
        let wrefs: Vec<&[i8]> = w.iter().map(|r| r.as_slice()).collect();
        arr.load_weights(&wrefs);
        let out = arr.stream(&d);
        for (i, row) in out.iter().enumerate() {
            for c in 0..cols {
                let exact: i64 = (0..rows).map(|k| d[i][k] as i64 * w[k][c] as i64).sum();
                assert_eq!(row[c], exact, "mismatch at ({i}, {c})");
            }
        }
    }

    #[test]
    fn short_tiles_are_zero_padded() {
        let mut arr = SystolicArray::new(4, 4);
        // 2-row, 3-col tile in a 4×4 array.
        arr.load_weights(&[&[1, 2, 3], &[4, 5, 6]]);
        let out = arr.stream(&[vec![1, 1]]);
        assert_eq!(out[0], vec![5, 7, 9, 0]);
    }

    #[test]
    fn cycle_counting() {
        let mut arr = SystolicArray::new(4, 4);
        let row: &[i8] = &[1, 2, 3, 4];
        let load = arr.load_weights(&[row, row, row, row]);
        assert_eq!(load, 5); // rows + 1 latch
        assert_eq!(arr.cycles(), 5);
        arr.stream(&vec![vec![0, 0, 0, 0]; 3]);
        assert_eq!(arr.cycles(), 5 + 3 + 4 + 4);
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut arr = SystolicArray::new(2, 2);
        arr.load_weights(&[&[9, 9], &[9, 9]]);
        arr.reset();
        assert_eq!(arr.cycles(), 0);
        let out = arr.stream(&[vec![5, 5]]);
        assert_eq!(out[0], vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "taller than the array")]
    fn oversized_tile_rejected() {
        let mut arr = SystolicArray::new(2, 2);
        arr.load_weights(&[&[1, 1], &[1, 1], &[1, 1]]);
    }

    #[test]
    fn consecutive_streams_reuse_held_weights() {
        // The convolutional reuse pattern: load once, stream many times.
        let mut arr = SystolicArray::new(2, 2);
        arr.load_weights(&[&[2, 0], &[0, 2]]);
        let a = arr.stream(&[vec![3, 4]]);
        let b = arr.stream(&[vec![5, 6]]);
        assert_eq!(a[0], vec![6, 8]);
        assert_eq!(b[0], vec![10, 12]);
    }

    proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]
        #[test]
        fn random_tiles_match_reference(
            rows in 1usize..5, cols in 1usize..5, m in 1usize..6, seed in any::<u64>()
        ) {
            let mut s = seed | 1;
            let mut next = move || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                (s >> 56) as i8
            };
            let w: Vec<Vec<i8>> = (0..rows).map(|_| (0..cols).map(|_| next()).collect()).collect();
            let d: Vec<Vec<i8>> = (0..m).map(|_| (0..rows).map(|_| next()).collect()).collect();
            let mut arr = SystolicArray::new(rows, cols);
            let wrefs: Vec<&[i8]> = w.iter().map(|r| r.as_slice()).collect();
            arr.load_weights(&wrefs);
            let out = arr.stream(&d);
            for i in 0..m {
                for c in 0..cols {
                    let exact: i64 = (0..rows).map(|k| d[i][k] as i64 * w[k][c] as i64).sum();
                    prop_assert_eq!(out[i][c], exact);
                }
            }
        }
    }
}
